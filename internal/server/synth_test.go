package server

import (
	"testing"

	"qilabel"
	"qilabel/internal/synth"
)

// synthSets generates a small deterministic corpus of perturbed source
// sets for server tests.
func synthSets(t *testing.T, seed uint64, n int) [][]*qilabel.Tree {
	t.Helper()
	corpus, err := synth.Corpus(synth.Config{
		Seed: seed, Sources: 3, Concepts: 6,
		Perturb: synth.Perturb{SynonymSwap: 0.4, NumberVary: 0.3, Noise: 0.3, Reorder: 0.5},
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// TestIntegrateSynthCorpus drives the HTTP surface with generated source
// sets: every set integrates cleanly, and re-submitting the same set with
// its sources permuted is a cache hit under the same key — the
// source-order canonicalization holds across the wire format, not just in
// the library API.
func TestIntegrateSynthCorpus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i, sources := range synthSets(t, 41, 5) {
		resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: sources})
		if resp.StatusCode != 200 {
			t.Fatalf("set %d: status %d", i, resp.StatusCode)
		}
		var first integrateResponse
		decodeBody(t, resp, &first)
		if first.Key == "" || first.Cached {
			t.Fatalf("set %d: first response key=%q cached=%v", i, first.Key, first.Cached)
		}
		if len(first.Labels) == 0 {
			t.Errorf("set %d: no labels assigned", i)
		}

		// Rotate the source order and resubmit.
		permuted := append(append([]*qilabel.Tree{}, sources[1:]...), sources[0])
		resp = postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: permuted})
		if resp.StatusCode != 200 {
			t.Fatalf("set %d permuted: status %d", i, resp.StatusCode)
		}
		var second integrateResponse
		decodeBody(t, resp, &second)
		if !second.Cached {
			t.Errorf("set %d: permuted resubmission was not a cache hit", i)
		}
		if second.Key != first.Key {
			t.Errorf("set %d: permuted key %q != original %q", i, second.Key, first.Key)
		}
		if second.Text != first.Text {
			t.Errorf("set %d: permuted tree rendering differs", i)
		}
	}
}

// TestBatchSynthCorpus submits a synth corpus with duplicates through the
// batch endpoint and checks the summary accounts for the reuse.
func TestBatchSynthCorpus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	corpus := synthSets(t, 99, 4)
	var items []integrateRequest
	for round := 0; round < 2; round++ { // every set appears twice
		for _, sources := range corpus {
			items = append(items, integrateRequest{Sources: sources})
		}
	}
	status, results, summary := postBatch(t, ts.URL, batchRequest{Items: items})
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	if summary == nil {
		t.Fatal("batch response has no done summary")
	}
	if len(results) != len(items) {
		t.Fatalf("got %d item lines, want %d", len(results), len(items))
	}
	if summary.Items != len(items) || summary.Errors != 0 {
		t.Fatalf("summary %+v, want %d items and no errors", summary, len(items))
	}
	if summary.Distinct != len(corpus) {
		t.Errorf("distinct = %d, want %d (duplicates dedupe by cache key)", summary.Distinct, len(corpus))
	}
	if summary.Computed != len(corpus) {
		t.Errorf("computed = %d, want one pipeline run per distinct set", summary.Computed)
	}
}
