package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"qilabel"
)

// postBatch sends a batch request and splits the NDJSON response into item
// lines and the trailing summary line.
func postBatch(t *testing.T, url string, req batchRequest) (int, []batchItemResult, *batchSummaryLine) {
	t.Helper()
	resp := postJSON(t, url+"/v1/integrate/batch", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("batch status %d with undecodable body: %v", resp.StatusCode, err)
		}
		return resp.StatusCode, nil, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var (
		items   []batchItemResult
		summary *batchSummaryLine
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			summary = &batchSummaryLine{}
			if err := json.Unmarshal(line, summary); err != nil {
				t.Fatalf("summary line: %v", err)
			}
			continue
		}
		var item batchItemResult
		if err := json.Unmarshal(line, &item); err != nil {
			t.Fatalf("item line %q: %v", line, err)
		}
		items = append(items, item)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, items, summary
}

// TestBatchDedupAndStatuses: a batch with duplicate items runs the
// pipeline once per distinct cache key, reports the duplicates as
// coalesced, isolates a bad item's error, and a repeat batch hits the
// cache.
func TestBatchDedupAndStatuses(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := batchRequest{Items: []integrateRequest{
		{Domain: "Airline"},
		{Domain: "Airline"}, // duplicate of item 0
		{Sources: fixtureSources()},
		{Domain: "Groceries"}, // unknown domain: per-item error
	}}
	status, items, summary := postBatch(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(items) != 4 {
		t.Fatalf("got %d item lines, want 4", len(items))
	}
	byIndex := make(map[int]batchItemResult, len(items))
	for _, it := range items {
		byIndex[it.Index] = it
	}
	if got := byIndex[0]; got.Status != statusComputed || got.Key == "" || got.Class == "" {
		t.Fatalf("item 0 = %+v, want computed with key and class", got)
	}
	if got := byIndex[1]; got.Status != statusCoalesced || got.Key != byIndex[0].Key {
		t.Fatalf("item 1 = %+v, want coalesced duplicate of item 0", got)
	}
	if got := byIndex[2]; got.Status != statusComputed || len(got.Labels) == 0 {
		t.Fatalf("item 2 = %+v, want computed with labels", got)
	}
	if got := byIndex[3]; got.Error == nil || got.Error.Code != codeBadRequest {
		t.Fatalf("item 3 = %+v, want bad_request error", got)
	}
	want := batchSummaryLine{Done: true, Items: 4, Distinct: 2, Computed: 2, Coalesced: 1, Errors: 1}
	if summary == nil || *summary != want {
		t.Fatalf("summary = %+v, want %+v", summary, want)
	}
	// Exactly one cache insertion per distinct key, even with duplicates in
	// the batch.
	if s.cache.Len() != 2 {
		t.Fatalf("cache entries = %d, want 2", s.cache.Len())
	}
	if got := s.metrics.cacheMisses.Load(); got != 2 {
		t.Fatalf("cache misses = %d, want 2", got)
	}

	// Running the same batch again: every valid item is a cache hit.
	_, items, summary = postBatch(t, ts.URL, req)
	for _, it := range items {
		if it.Index == 3 {
			continue
		}
		if it.Status != statusHit && it.Status != statusCoalesced {
			t.Fatalf("repeat item %d status = %q, want hit (or coalesced dup)", it.Index, it.Status)
		}
	}
	if summary.Hits != 2 || summary.Computed != 0 {
		t.Fatalf("repeat summary = %+v, want 2 hits, 0 computed", summary)
	}
	if got := s.metrics.batches.Load(); got != 2 {
		t.Fatalf("batches metric = %d, want 2", got)
	}
	if got := s.metrics.batchItems.Load(); got != 8 {
		t.Fatalf("batchItems metric = %d, want 8", got)
	}
}

// TestBatchItemErrorIsolation: a tree set that fails inside the pipeline
// (no clusters) errors only its own line; the other items complete.
func TestBatchItemErrorIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := batchRequest{Items: []integrateRequest{
		{Sources: []*qilabel.Tree{qilabel.NewTree("solo", qilabel.NewField("Only", ""))}},
		{Sources: fixtureSources()},
	}}
	status, items, summary := postBatch(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	byIndex := make(map[int]batchItemResult, len(items))
	for _, it := range items {
		byIndex[it.Index] = it
	}
	if got := byIndex[0]; got.Error == nil || got.Error.Code != codeBadRequest {
		t.Fatalf("item 0 = %+v, want a pipeline error", got)
	}
	if got := byIndex[1]; got.Error != nil || got.Status != statusComputed {
		t.Fatalf("item 1 = %+v, want a clean computed result", got)
	}
	if summary.Errors != 1 || summary.Computed != 1 {
		t.Fatalf("summary = %+v, want 1 error, 1 computed", summary)
	}
}

// TestBatchLimits: empty batches and oversized batches are rejected whole.
func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})

	status, _, _ := postBatch(t, ts.URL, batchRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", status)
	}

	over := batchRequest{Items: []integrateRequest{
		{Domain: "Airline"}, {Domain: "Book"}, {Domain: "Job"},
	}}
	status, _, _ = postBatch(t, ts.URL, over)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d, want 400", status)
	}
}

// TestBatchParallelismBudget: a budget of 1 serializes the distinct items
// but still completes them all.
func TestBatchParallelismBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 4})
	req := batchRequest{
		Parallelism: 1,
		Items: []integrateRequest{
			{Domain: "Airline"}, {Domain: "Book"}, {Domain: "Auto"},
		},
	}
	status, items, summary := postBatch(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(items) != 3 || summary.Computed != 3 || summary.Errors != 0 {
		t.Fatalf("items=%d summary=%+v, want 3 computed", len(items), summary)
	}
}
