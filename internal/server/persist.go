package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"qilabel"
)

// Cache persistence: the LRU result cache survives restarts. A snapshot is
// a versioned JSON file holding, per entry, the cache key, the inputs that
// produced it (domain, request options, source trees) and the response
// body. Writes are atomic (temp file + rename in the target directory), so
// a crash mid-checkpoint leaves the previous snapshot intact. Loads are
// defensive: a missing file is a cold start, a corrupt or
// version/fingerprint-mismatched file is discarded with an error the
// caller logs — never fatal — and every entry's key is recomputed from its
// persisted inputs, so an entry whose key does not reproduce under the
// current configuration is silently dropped instead of poisoning the
// cache.

// cacheSnapshotVersion is bumped whenever the snapshot wire format or the
// semantics of persisted entries change incompatibly.
const cacheSnapshotVersion = 1

// cacheSnapshotFile is the on-disk form of the result cache.
type cacheSnapshotFile struct {
	// Version is the wire-format version (cacheSnapshotVersion).
	Version int `json:"version"`
	// Fingerprint is the server's base-configuration fingerprint (the
	// qilabel.Config fingerprint of an optionless request — which covers
	// the configured lexicon). A snapshot taken under a different
	// configuration is stale and discarded wholesale.
	Fingerprint string `json:"fingerprint"`
	// SavedUnix is the checkpoint time (seconds since the epoch).
	SavedUnix int64 `json:"savedUnix"`
	// Entries are the cached integrations, least recently used first.
	Entries []cacheSnapshotEntry `json:"entries"`
}

// cacheSnapshotEntry is one persisted integration.
type cacheSnapshotEntry struct {
	Key      string            `json:"key"`
	Domain   string            `json:"domain,omitempty"`
	Options  requestOptions    `json:"options"`
	Sources  []*qilabel.Tree   `json:"sources"`
	Response integrateResponse `json:"response"`
}

// baseFingerprint identifies the server configuration for snapshot
// validation: the option fingerprint of a bare request, which pins the
// configured lexicon (the one server setting that changes results).
func (s *Server) baseFingerprint() string {
	if ig, err := s.integrator(requestOptions{}); err == nil {
		return ig.Fingerprint()
	}
	return qilabel.Fingerprint(s.options(requestOptions{})...)
}

// SaveCache atomically writes the current result cache to path and returns
// the number of entries persisted. Entries lacking their source trees
// (impossible today; guarded for future cache producers) are skipped.
func (s *Server) SaveCache(path string) (int, error) {
	keys, entries := s.cache.Dump()
	file := cacheSnapshotFile{
		Version:     cacheSnapshotVersion,
		Fingerprint: s.baseFingerprint(),
		SavedUnix:   time.Now().Unix(),
	}
	for i, e := range entries {
		if len(e.sources) == 0 {
			continue
		}
		file.Entries = append(file.Entries, cacheSnapshotEntry{
			Key:      keys[i],
			Domain:   e.domain,
			Options:  e.options,
			Sources:  e.sources,
			Response: e.resp,
		})
	}
	data, err := json.Marshal(file)
	if err != nil {
		return 0, fmt.Errorf("encoding cache snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("writing cache snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("writing cache snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("writing cache snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("writing cache snapshot: %w", err)
	}
	s.metrics.snapshotSaves.Add(1)
	return len(file.Entries), nil
}

// LoadCache restores a snapshot written by SaveCache into the result
// cache and returns how many entries it accepted. A missing file restores
// nothing and returns no error (a cold start). Any other failure — an
// unreadable file, corrupt JSON, a version or fingerprint mismatch — is
// returned for the caller to log; the cache is left as it was, and the
// server starts cold. Entries are validated individually: each persisted
// key must reproduce from the entry's own sources and options under the
// current configuration, so tampered or stale entries are dropped one by
// one rather than trusted.
func (s *Server) LoadCache(path string) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("reading cache snapshot: %w", err)
	}
	var file cacheSnapshotFile
	if err := json.Unmarshal(data, &file); err != nil {
		return 0, fmt.Errorf("corrupt cache snapshot %s: %w", path, err)
	}
	if file.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("cache snapshot %s has version %d, want %d", path, file.Version, cacheSnapshotVersion)
	}
	if fp := s.baseFingerprint(); file.Fingerprint != fp {
		return 0, fmt.Errorf("cache snapshot %s was taken under configuration %q, this server runs %q; discarding", path, file.Fingerprint, fp)
	}
	restored := 0
	for _, e := range file.Entries {
		if e.Key == "" || len(e.Sources) == 0 {
			continue
		}
		valid := true
		for _, t := range e.Sources {
			if err := t.Validate(); err != nil {
				valid = false
				break
			}
		}
		ig, igErr := s.integrator(e.Options)
		if !valid || igErr != nil || ig.CacheKey(e.Sources) != e.Key {
			continue
		}
		s.cache.Put(e.Key, &cacheEntry{
			resp:    e.Response,
			domain:  e.Domain,
			options: e.Options,
			sources: e.Sources,
		})
		restored++
	}
	s.metrics.snapshotLoads.Add(1)
	s.metrics.snapshotRestored.Add(int64(restored))
	return restored, nil
}

// rehydrate recomputes the full pipeline result of a snapshot-restored
// cache entry from its persisted sources, bounded by the request timeout
// and the worker pool, and re-caches the entry with the result attached.
// The pipeline is deterministic, so the recomputed result is exactly the
// one the entry's key names.
func (s *Server) rehydrate(ctx context.Context, key string, e *cacheEntry) (*qilabel.Result, *apiError) {
	wctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	release, ok := s.acquireCtx(wctx)
	if !ok {
		if ctx.Err() != nil {
			return nil, &apiError{statusClientClosedRequest, codeCanceled,
				"request canceled before the integration finished"}
		}
		return nil, s.timeoutError()
	}
	defer release()
	ig, err := s.integrator(e.options)
	if err != nil {
		return nil, s.apiErrorFor(err)
	}
	res, err := ig.IntegrateContext(wctx, e.sources)
	if err != nil {
		return nil, s.apiErrorFor(err)
	}
	s.cache.Put(key, &cacheEntry{
		res:     res,
		resp:    e.resp,
		domain:  e.domain,
		options: e.options,
		sources: e.sources,
	})
	return res, nil
}
