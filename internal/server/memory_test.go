package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"

	"qilabel"
)

// disjointSources builds a small annotated corpus whose labels are unique
// to request i, so nothing the server might retain per request is ever
// shared with another request.
func disjointSources(i int) []*qilabel.Tree {
	q := fmt.Sprintf("Q%d", i)
	return []*qilabel.Tree{
		qilabel.NewTree("a",
			qilabel.NewField("Fare "+q, "c_fare"),
			qilabel.NewField("Origin "+q, "c_from"),
			qilabel.NewField("Target "+q, "c_to"),
		),
		qilabel.NewTree("b",
			qilabel.NewField("Price "+q, "c_fare"),
			qilabel.NewField("Start "+q, "c_from"),
			qilabel.NewField("Finish "+q, "c_to"),
		),
	}
}

// heapAlloc returns the live heap after a full collection.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestServerMemoryBounded is the long-running-service audit for the
// semantic-kernel caches: every request carries labels no other request
// uses, so any per-request state the server retained — analysis tables,
// Relate memos, Semantics caches, uncapped result entries — would grow the
// live heap linearly with the request count. The test pins that after a
// warm-up, hundreds of disjoint integrations leave the GC'd heap flat (the
// analysis tables die with their request) and the result cache at its
// configured capacity.
func TestServerMemoryBounded(t *testing.T) {
	const capEntries = 4
	s, ts := newTestServer(t, Config{CacheSize: capEntries})

	run := func(from, to int) {
		for i := from; i < to; i++ {
			resp := postJSON(t, ts.URL+"/v1/integrate",
				integrateRequest{Sources: disjointSources(i)})
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d: status %d", i, resp.StatusCode)
			}
		}
	}

	run(0, 20) // warm up allocator, http machinery, lexicon tables
	base := heapAlloc()
	const n = 200
	run(20, 20+n)
	grown := heapAlloc()

	if s.cache.Len() > capEntries {
		t.Fatalf("result cache holds %d entries, capacity %d", s.cache.Len(), capEntries)
	}
	// A retained analysis table or Semantics for each of the n disjoint
	// requests would add tens of KiB per request; a flat service stays far
	// below this ceiling (observed growth is well under 1 MiB).
	const limit = 8 << 20
	if grown > base+limit {
		t.Fatalf("GC'd heap grew %d bytes over %d disjoint requests (limit %d): per-request state is being retained",
			grown-base, n, limit)
	}
}
