package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"qilabel"
)

// integrateOnce runs one integration against ts and returns the response.
func integrateOnce(t *testing.T, url string, req integrateRequest) integrateResponse {
	t.Helper()
	resp := postJSON(t, url+"/v1/integrate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("integrate status = %d", resp.StatusCode)
	}
	var out integrateResponse
	decodeBody(t, resp, &out)
	return out
}

// TestCacheSnapshotRoundTrip: save a warm cache, load it into a fresh
// server, and verify restored entries serve /v1/integrate as cache hits
// and /v1/translate by recomputing (rehydrating) the pipeline result.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	sA, tsA := newTestServer(t, Config{})
	airline := integrateOnce(t, tsA.URL, integrateRequest{Domain: "Airline"})
	fixture := integrateOnce(t, tsA.URL, integrateRequest{Sources: fixtureSources()})

	path := filepath.Join(t.TempDir(), "cache.json")
	saved, err := sA.SaveCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 2 {
		t.Fatalf("saved %d entries, want 2", saved)
	}

	sB, tsB := newTestServer(t, Config{})
	restored, err := sB.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d entries, want 2", restored)
	}
	if got := sB.metrics.snapshotRestored.Load(); got != 2 {
		t.Fatalf("snapshotRestored metric = %d, want 2", got)
	}

	// The restored entries answer /v1/integrate from the cache, with the
	// response the original server computed.
	got := integrateOnce(t, tsB.URL, integrateRequest{Domain: "Airline"})
	if !got.Cached {
		t.Fatal("restored Airline entry did not serve as a cache hit")
	}
	if got.Key != airline.Key || got.Class != airline.Class {
		t.Fatalf("restored response diverges: key %q/%q class %q/%q",
			got.Key, airline.Key, got.Class, airline.Class)
	}
	if got := sB.metrics.cacheMisses.Load(); got != 0 {
		t.Fatalf("cache misses on restored server = %d, want 0", got)
	}

	// /v1/translate on a restored key rehydrates the full result and
	// answers with sub-queries.
	resp := postJSON(t, tsB.URL+"/v1/translate", translateRequest{
		Key:   fixture.Key,
		Query: map[string]string{"c_Adult": "2"},
	})
	if resp.StatusCode != http.StatusOK {
		var env errorEnvelope
		decodeBody(t, resp, &env)
		t.Fatalf("translate on restored key: status %d (%s)", resp.StatusCode, env.Error.Message)
	}
	var tr translateResponse
	decodeBody(t, resp, &tr)
	if len(tr.SubQueries) == 0 {
		t.Fatal("rehydrated translate returned no sub-queries")
	}
	// Rehydration re-cached the entry with the result attached; a second
	// translate must not recompute.
	naming0 := stageCount(sB, "naming")
	resp = postJSON(t, tsB.URL+"/v1/translate", translateRequest{
		Key:   fixture.Key,
		Query: map[string]string{"c_Adult": "2"},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second translate: status %d", resp.StatusCode)
	}
	if got := stageCount(sB, "naming"); got != naming0 {
		t.Fatalf("second translate recomputed the pipeline (naming runs %d -> %d)", naming0, got)
	}
}

func stageCount(s *Server, stage string) int64 {
	return s.metrics.snapshot(0, 0, 0).Stages[stage].Count
}

// TestLoadCacheDefensive: missing files are cold starts; corrupt files,
// wrong versions and foreign fingerprints are rejected with an error (the
// caller logs and continues); individually tampered entries are dropped
// without failing the load.
func TestLoadCacheDefensive(t *testing.T) {
	dir := t.TempDir()

	s, ts := newTestServer(t, Config{})
	integrateOnce(t, ts.URL, integrateRequest{Domain: "Airline"})
	path := filepath.Join(dir, "cache.json")
	if _, err := s.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	t.Run("missing file", func(t *testing.T) {
		fresh, _ := newTestServer(t, Config{})
		n, err := fresh.LoadCache(filepath.Join(dir, "absent.json"))
		if n != 0 || err != nil {
			t.Fatalf("missing file: restored=%d err=%v, want 0/nil", n, err)
		}
	})

	t.Run("corrupt json", func(t *testing.T) {
		bad := filepath.Join(dir, "corrupt.json")
		if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, _ := newTestServer(t, Config{})
		n, err := fresh.LoadCache(bad)
		if n != 0 || err == nil {
			t.Fatalf("corrupt file: restored=%d err=%v, want 0 and an error", n, err)
		}
		if fresh.cache.Len() != 0 {
			t.Fatal("corrupt load dirtied the cache")
		}
	})

	t.Run("version mismatch", func(t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var file cacheSnapshotFile
		if err := json.Unmarshal(data, &file); err != nil {
			t.Fatal(err)
		}
		file.Version = cacheSnapshotVersion + 1
		stale := filepath.Join(dir, "stale.json")
		out, _ := json.Marshal(file)
		if err := os.WriteFile(stale, out, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, _ := newTestServer(t, Config{})
		if n, err := fresh.LoadCache(stale); n != 0 || err == nil {
			t.Fatalf("version mismatch: restored=%d err=%v, want 0 and an error", n, err)
		}
	})

	t.Run("fingerprint mismatch", func(t *testing.T) {
		// A server with a different lexicon has a different base
		// fingerprint; the snapshot is foreign to it.
		lex := qilabel.NewLexicon()
		lex.AddSynonyms("zztest", "zzthing")
		other, _ := newTestServer(t, Config{Lexicon: lex})
		if n, err := other.LoadCache(path); n != 0 || err == nil {
			t.Fatalf("fingerprint mismatch: restored=%d err=%v, want 0 and an error", n, err)
		}
	})

	t.Run("tampered entry dropped", func(t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var file cacheSnapshotFile
		if err := json.Unmarshal(data, &file); err != nil {
			t.Fatal(err)
		}
		if len(file.Entries) != 1 {
			t.Fatalf("snapshot has %d entries, want 1", len(file.Entries))
		}
		file.Entries[0].Key = "deadbeef" // no longer reproduces from inputs
		tampered := filepath.Join(dir, "tampered.json")
		out, _ := json.Marshal(file)
		if err := os.WriteFile(tampered, out, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, _ := newTestServer(t, Config{})
		n, err := fresh.LoadCache(tampered)
		if err != nil {
			t.Fatalf("tampered entry must not fail the load: %v", err)
		}
		if n != 0 || fresh.cache.Len() != 0 {
			t.Fatalf("tampered entry was restored (n=%d, cache=%d)", n, fresh.cache.Len())
		}
	})
}

// TestSaveCachePreservesRecency: saving and restoring keeps the LRU order,
// so the entry most recently used before the save is also the last to be
// evicted after the restore.
func TestSaveCachePreservesRecency(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 4})
	airline := integrateOnce(t, ts.URL, integrateRequest{Domain: "Airline"})
	book := integrateOnce(t, ts.URL, integrateRequest{Domain: "Book"})
	// Touch Airline so Book is the least recently used.
	integrateOnce(t, ts.URL, integrateRequest{Domain: "Airline"})

	path := filepath.Join(t.TempDir(), "cache.json")
	if _, err := s.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	// Restore into a cache of size 1: re-inserting LRU-first means the
	// most recently used entry (Airline) wins the single slot.
	fresh, _ := newTestServer(t, Config{CacheSize: 1})
	if _, err := fresh.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.cache.Get(airline.Key); !ok {
		t.Fatal("most recently used entry lost in restore")
	}
	if _, ok := fresh.cache.Get(book.Key); ok {
		t.Fatal("least recently used entry survived a size-1 restore")
	}
}

// TestSaveCacheOverwritesAtomically: a save over an existing snapshot
// replaces it in one step and leaves no temp files behind.
func TestSaveCacheOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")

	s, ts := newTestServer(t, Config{})
	integrateOnce(t, ts.URL, integrateRequest{Domain: "Airline"})
	if _, err := s.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	integrateOnce(t, ts.URL, integrateRequest{Domain: "Book"})
	n, err := s.SaveCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("second save wrote %d entries, want 2", n)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name() != "cache.json" {
		t.Fatalf("directory holds %d files, want exactly cache.json", len(files))
	}
	var file cacheSnapshotFile
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Entries) != 2 {
		t.Fatalf("snapshot on disk has %d entries, want 2", len(file.Entries))
	}
}
