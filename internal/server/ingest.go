package server

import (
	"context"
	"errors"
	"net/http"

	"qilabel"
	"qilabel/internal/discover"
)

// Online domain discovery over HTTP: forms arrive one page (or one tree)
// at a time with no domain attached, and the server clusters them into
// domains by field-label semantics, maintaining one live delta session
// per discovered domain.
//
//	POST /v1/ingest                    raw HTML page (every <form> is
//	                                   ingested) or one source tree in,
//	                                   per-form domain assignments out
//	GET  /v1/domains/discovered        all live domains with their
//	                                   integration key, classification
//	                                   and cluster summaries
//	GET  /v1/domains/discovered/{id}   one live domain
//
// The discovery engine is server-owned state bounded like sessions: an
// idle TTL (a domain no form has joined for DiscoverTTL is evicted
// lazily, forgetting its forms) and a domain cap (discovering past
// MaxDomains evicts the least-recently-used domain). Clients must treat
// a 404 on a known domain ID as eviction — or as a merge: domain IDs are
// canonical (the minimum member form hash), so a merge or the arrival of
// a smaller-hash member moves the domain to a new ID. The listing is the
// source of truth.
//
// Cache interop: every ingest publishes the touched domain's integration
// into the result LRU under its qilabel.CacheKey — exactly the key a
// /v1/integrate of the member set computes — so /v1/translate works
// against discovered domains and, with -cache-file, their labelings ride
// the snapshot across restarts. The similarity threshold never enters
// those keys (it shapes the partition, not the integration), so a batch
// integration of the same sources is a warm hit whatever threshold
// discovered the domain.

// discoverEngine returns the discovery engine of one lexicon selection
// (ropts.Lexicon, already resolved to a content address; "" = server
// default), creating it on first use. Engines are per-lexicon because a
// domain partition computed under one vocabulary is meaningless — and a
// tenant-isolation leak — under another; the matcher-mode Integrator
// each engine runs on is shared with that lexicon's matcher requests, so
// warm caches still serve both paths.
func (s *Server) discoverEngine(ropts requestOptions) (*discover.Engine, error) {
	ropts = requestOptions{Matcher: true, Lexicon: ropts.Lexicon}
	s.discoverMu.Lock()
	defer s.discoverMu.Unlock()
	if e, ok := s.discovery[ropts.Lexicon]; ok {
		return e, nil
	}
	ig, err := s.integrator(ropts)
	if err != nil {
		return nil, err
	}
	e, err := discover.New(discover.Config{
		Integrator: ig,
		Threshold:  s.cfg.DiscoverThreshold,
		TTL:        s.cfg.DiscoverTTL,
		MaxDomains: s.cfg.MaxDomains,
		Now:        s.discoverNow,
	})
	if err != nil {
		return nil, err
	}
	if s.discovery == nil {
		s.discovery = make(map[string]*discover.Engine)
	}
	s.discovery[ropts.Lexicon] = e
	return e, nil
}

// discoveryEngines returns every started engine without creating any —
// the /metrics and listing paths, which must not allocate state as a
// side effect.
func (s *Server) discoveryEngines() []*discover.Engine {
	s.discoverMu.Lock()
	defer s.discoverMu.Unlock()
	out := make([]*discover.Engine, 0, len(s.discovery))
	for _, e := range s.discovery {
		out = append(out, e)
	}
	return out
}

// ---- request/response shapes -------------------------------------------

type ingestRequest struct {
	// HTML is a raw page; every <form> it contains is ingested.
	HTML string `json:"html,omitempty"`
	// Interface names extracted interfaces when forms carry no id/name
	// attribute (default "form").
	Interface string `json:"interface,omitempty"`
	// Source ingests one interface tree directly instead of HTML.
	Source *qilabel.Tree `json:"source,omitempty"`
	// Lexicon selects the lexical knowledge base (version ID or alias;
	// the X-Lexicon header fills an empty field). Each lexicon owns its
	// own discovery partition.
	Lexicon string `json:"lexicon,omitempty"`
}

// ingestAssignment is the wire form of one form's discover.Assignment.
type ingestAssignment struct {
	Interface  string   `json:"interface"`
	FormHash   string   `json:"formHash"`
	Domain     string   `json:"domain"`
	New        bool     `json:"new,omitempty"`
	Duplicate  bool     `json:"duplicate,omitempty"`
	Merged     []string `json:"merged,omitempty"`
	Sources    int      `json:"sources"`
	Similarity float64  `json:"similarity"`
	// Key is the domain's integration cache key; pass it to /v1/translate.
	Key string `json:"key"`
}

type ingestResponse struct {
	Assignments []ingestAssignment `json:"assignments"`
	// Domains is the live domain count after the request.
	Domains int `json:"domains"`
}

type discoveredClusterJSON struct {
	Name      string   `json:"name"`
	Label     string   `json:"label,omitempty"`
	Frequency int      `json:"frequency"`
	Labels    []string `json:"labels"`
}

type discoveredDomainJSON struct {
	ID       string                  `json:"id"`
	Sources  int                     `json:"sources"`
	Forms    []string                `json:"forms"`
	Key      string                  `json:"key"`
	Class    string                  `json:"class"`
	Clusters []discoveredClusterJSON `json:"clusters"`
}

type discoveredResponse struct {
	Domains []discoveredDomainJSON `json:"domains"`
	// Threshold is the effective similarity threshold the partition was
	// discovered under.
	Threshold float64 `json:"threshold"`
}

// ---- handlers -----------------------------------------------------------

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !s.decode(w, r, &req) {
		return
	}
	var forms []*qilabel.Tree
	switch {
	case req.HTML != "" && req.Source != nil:
		writeError(w, http.StatusBadRequest, codeBadRequest, "specify either html or source, not both")
		return
	case req.HTML != "":
		iface := req.Interface
		if iface == "" {
			iface = "form"
		}
		forms = qilabel.ExtractForms([]byte(req.HTML), iface)
		if len(forms) == 0 {
			writeError(w, http.StatusBadRequest, codeBadRequest, "no <form> elements found in the page")
			return
		}
	case req.Source != nil:
		forms = []*qilabel.Tree{req.Source}
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest, "nothing to ingest: provide html or source")
		return
	}
	for _, t := range forms {
		if err := t.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "invalid source tree: "+err.Error())
			return
		}
	}
	ropts, apiErr := s.resolveLexicon(lexiconFromRequest(r, requestOptions{Matcher: true, Lexicon: req.Lexicon}))
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	eng, err := s.discoverEngine(ropts)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	release, ok := s.acquire()
	if !ok {
		writeAPIError(w, s.apiErrorFor(errSaturated))
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp := ingestResponse{Assignments: make([]ingestAssignment, 0, len(forms))}
	touched := make(map[string]bool)
	for _, t := range forms {
		a, err := eng.Ingest(ctx, t)
		if err != nil {
			writeAPIError(w, s.apiErrorFor(err))
			return
		}
		if !a.Duplicate {
			touched[a.Domain] = true
		}
		resp.Assignments = append(resp.Assignments, ingestAssignment{
			Interface:  t.Interface,
			FormHash:   a.FormHash,
			Domain:     a.Domain,
			New:        a.New,
			Duplicate:  a.Duplicate,
			Merged:     a.Merged,
			Sources:    a.Sources,
			Similarity: a.Similarity,
			Key:        a.Key,
		})
		resp.Domains = a.Domains
	}
	// Publish each touched domain's integration into the result cache so
	// /v1/translate (and the snapshot file) see it. A later ingest into
	// the same domain publishes the newer state under its own key.
	for id := range touched {
		if err := s.publishDomain(eng, ropts, id); err != nil && !errors.Is(err, discover.ErrUnknownDomain) {
			writeAPIError(w, s.apiErrorFor(err))
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// publishDomain caches one discovered domain's current integration under
// its canonical key (namespaced by the engine's lexicon via the
// fingerprint). Unknown IDs are ignored by callers: the domain may have
// been merged away or evicted by a concurrent ingest.
func (s *Server) publishDomain(eng *discover.Engine, ropts requestOptions, id string) error {
	res, key, sources, err := eng.Result(id)
	if err != nil {
		return err
	}
	if _, hit := s.cache.Get(key); hit {
		return nil
	}
	s.complete(key, "", sources, requestOptions{Matcher: true, Lexicon: ropts.Lexicon}, res)
	return nil
}

func (s *Server) handleDiscovered(w http.ResponseWriter, r *http.Request) {
	// With nothing ingested yet this is an empty listing, not an error,
	// and the threshold reported is the one ingestion would run with.
	thr := s.cfg.DiscoverThreshold
	if thr == 0 {
		thr = discover.DefaultThreshold
	}
	resp := discoveredResponse{Domains: []discoveredDomainJSON{}, Threshold: thr}
	for _, eng := range s.discoveryEngines() {
		infos, err := eng.Domains()
		if err != nil {
			writeAPIError(w, s.apiErrorFor(err))
			return
		}
		resp.Threshold = eng.Threshold()
		for _, info := range infos {
			resp.Domains = append(resp.Domains, domainJSONOf(info))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDiscoveredDomain(w http.ResponseWriter, r *http.Request) {
	for _, eng := range s.discoveryEngines() {
		info, err := eng.Domain(r.PathValue("id"))
		if errors.Is(err, discover.ErrUnknownDomain) {
			continue
		}
		if err != nil {
			writeAPIError(w, s.apiErrorFor(err))
			return
		}
		writeJSON(w, http.StatusOK, domainJSONOf(info))
		return
	}
	writeDomainNotFound(w)
}

func domainJSONOf(info discover.DomainInfo) discoveredDomainJSON {
	d := discoveredDomainJSON{
		ID:       info.ID,
		Sources:  info.Sources,
		Forms:    info.Forms,
		Key:      info.Key,
		Class:    info.Class,
		Clusters: make([]discoveredClusterJSON, 0, len(info.Clusters)),
	}
	for _, c := range info.Clusters {
		d.Clusters = append(d.Clusters, discoveredClusterJSON{
			Name:      c.Name,
			Label:     c.Label,
			Frequency: c.Frequency,
			Labels:    c.Labels,
		})
	}
	return d
}

func writeDomainNotFound(w http.ResponseWriter) {
	writeError(w, http.StatusNotFound, codeNotFound,
		"unknown, merged or evicted domain id; list GET /v1/domains/discovered for live IDs")
}

// discoverySnapshotOf renders the engines' statistics for /metrics,
// summed across every per-lexicon partition; no engines (nothing
// ingested yet) yields the zero section with the configured threshold.
func discoverySnapshotOf(engines []*discover.Engine, cfgThreshold float64) discoverySnapshot {
	d := discoverySnapshot{Threshold: cfgThreshold}
	if d.Threshold == 0 {
		d.Threshold = discover.DefaultThreshold
	}
	for _, eng := range engines {
		st := eng.Stats()
		d.Threshold = eng.Threshold()
		d.Active += st.Domains
		d.Forms += st.Forms
		d.Ingested += st.Ingested
		d.Duplicates += st.Duplicates
		d.Created += st.Created
		d.Merged += st.Merged
		d.Evicted += st.Evicted
	}
	return d
}
