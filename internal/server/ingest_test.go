package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"qilabel"
)

// ingestLexicon mirrors the discover package's test vocabulary: three
// disjoint mini-domains whose labels relate only within a domain.
func ingestLexicon() *qilabel.Lexicon {
	lex := qilabel.NewLexicon()
	lex.AddSynonyms("passenger", "traveler", "occupant")
	lex.AddSynonyms("destination", "place")
	lex.AddSynonyms("departure", "leaving")
	lex.AddSynonyms("author", "writer")
	lex.AddSynonyms("title", "heading")
	return lex
}

func ingestTree(iface string, labels ...string) *qilabel.Tree {
	nodes := make([]*qilabel.Node, len(labels))
	for i, l := range labels {
		nodes[i] = qilabel.NewField(l, "")
	}
	return qilabel.NewTree(iface, nodes...)
}

func ingestSource(t *testing.T, url string, tree *qilabel.Tree) ingestResponse {
	t.Helper()
	var out ingestResponse
	resp := doJSON(t, http.MethodPost, url+"/v1/ingest", ingestRequest{Source: tree}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: status %d", tree.Interface, resp.StatusCode)
	}
	if len(out.Assignments) != 1 {
		t.Fatalf("ingest %s: %d assignments, want 1", tree.Interface, len(out.Assignments))
	}
	return out
}

// TestIngestLifecycleHTTP drives the whole discovery surface: HTML
// ingestion, tree ingestion, domain listing and lookup, the duplicate
// no-op, the wire-level equivalence with /v1/integrate, translate interop
// and the exact /metrics discovery section.
func TestIngestLifecycleHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Lexicon: ingestLexicon()})

	// One page with two forms of two different domains.
	var first ingestResponse
	page := `<form id="flights-a"><label>Passenger</label><input name=p>` +
		`<label>Destination</label><input name=d></form>` +
		`<form id="books-a"><label>Author</label><input name=a>` +
		`<label>Title</label><input name=t></form>`
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/ingest", ingestRequest{HTML: page}, &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest page: status %d", resp.StatusCode)
	}
	if len(first.Assignments) != 2 || first.Domains != 2 {
		t.Fatalf("page ingest: %+v, want 2 assignments / 2 domains", first)
	}
	for _, a := range first.Assignments {
		if !a.New || a.Key == "" || a.Domain == "" {
			t.Fatalf("bad page assignment: %+v", a)
		}
	}

	// A synonym-labeled tree joins the flights domain rather than
	// founding a third.
	joined := ingestSource(t, ts.URL, ingestTree("flights-b", "Traveler", "Place"))
	ja := joined.Assignments[0]
	if ja.New || ja.Duplicate || joined.Domains != 2 || ja.Sources != 2 {
		t.Fatalf("synonym ingest: %+v, want join of existing domain", joined)
	}

	// Re-ingesting the same tree is a duplicate no-op.
	dup := ingestSource(t, ts.URL, ingestTree("flights-b", "Traveler", "Place"))
	da := dup.Assignments[0]
	if !da.Duplicate || da.Domain != ja.Domain || da.Sources != 2 {
		t.Fatalf("duplicate ingest: %+v", dup)
	}

	// The listing exposes both domains with their cluster summaries.
	var listing discoveredResponse
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/domains/discovered", nil, &listing); resp.StatusCode != http.StatusOK {
		t.Fatalf("listing: status %d", resp.StatusCode)
	}
	if len(listing.Domains) != 2 || listing.Threshold == 0 {
		t.Fatalf("listing: %+v", listing)
	}
	var flights discoveredDomainJSON
	for _, d := range listing.Domains {
		if d.ID == ja.Domain {
			flights = d
		}
		if d.Key == "" || d.Class == "" || len(d.Clusters) == 0 || d.Sources != len(d.Forms) {
			t.Fatalf("incomplete domain entry: %+v", d)
		}
	}
	if flights.ID == "" || flights.Sources != 2 {
		t.Fatalf("flights domain missing from listing: %+v", listing)
	}

	// Single-domain lookup agrees with the listing; unknown IDs are 404s
	// with the shared envelope.
	var one discoveredDomainJSON
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/domains/discovered/"+flights.ID, nil, &one); resp.StatusCode != http.StatusOK {
		t.Fatalf("domain lookup: status %d", resp.StatusCode)
	}
	if one.Key != flights.Key || one.Sources != flights.Sources {
		t.Fatalf("lookup %+v disagrees with listing %+v", one, flights)
	}
	var envelope errorEnvelope
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/domains/discovered/nope", nil, &envelope); resp.StatusCode != http.StatusNotFound || envelope.Error.Code != codeNotFound {
		t.Fatalf("unknown domain: status %d, %+v", resp.StatusCode, envelope)
	}

	// Wire-level equivalence: a /v1/integrate of the discovered domain's
	// member sources is a warm cache hit under the very same key.
	members := []*qilabel.Tree{
		ingestTree("flights-a", "Passenger", "Destination"),
		ingestTree("flights-b", "Traveler", "Place"),
	}
	var batch integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate",
		integrateRequest{Sources: members, Options: requestOptions{Matcher: true}}), &batch)
	if batch.Key != flights.Key {
		t.Fatalf("batch integrate key %s != discovered key %s", batch.Key, flights.Key)
	}
	if !batch.Cached {
		t.Fatal("batch integrate of a discovered domain missed the cache — ingest did not publish")
	}

	// Translate interop against the discovered domain's key.
	cluster := flights.Clusters[0].Name
	var tr translateResponse
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/translate",
		translateRequest{Key: flights.Key, Query: map[string]string{cluster: "2"}}, &tr); resp.StatusCode != http.StatusOK || len(tr.SubQueries) == 0 {
		t.Fatalf("translate against discovered key: status %d, %+v", resp.StatusCode, tr)
	}

	// The discovery metrics section is exact: 4 ingested (3 trees + 1
	// duplicate arrived as 4 accepted forms), 1 duplicate, 2 created, no
	// merges or evictions, 2 live domains holding 3 forms.
	var snap snapshot
	decodeBody(t, mustGet(t, ts.URL+"/metrics"), &snap)
	want := discoverySnapshot{
		Active: 2, Forms: 3, Ingested: 4, Duplicates: 1,
		Created: 2, Merged: 0, Evicted: 0, Threshold: listing.Threshold,
	}
	if snap.Discovery != want {
		t.Fatalf("discovery metrics %+v, want %+v", snap.Discovery, want)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIngestConcurrentSameDomain hammers one domain from many goroutines
// (run under -race): every form carries related labels, so the engine
// must serialize them into a single coherent domain.
func TestIngestConcurrentSameDomain(t *testing.T) {
	_, ts := newTestServer(t, Config{Lexicon: ingestLexicon()})
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tree := ingestTree(fmt.Sprintf("flights-%02d", i), "Passenger", "Destination")
			var out ingestResponse
			resp := doJSON(t, http.MethodPost, ts.URL+"/v1/ingest", ingestRequest{Source: tree}, &out)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("ingest %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var listing discoveredResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/domains/discovered", nil, &listing)
	if len(listing.Domains) != 1 {
		t.Fatalf("concurrent ingests split into %d domains", len(listing.Domains))
	}
	if got := listing.Domains[0].Sources; got != n {
		t.Fatalf("domain holds %d sources, want %d", got, n)
	}
	var snap snapshot
	decodeBody(t, mustGet(t, ts.URL+"/metrics"), &snap)
	if snap.Discovery.Ingested != n || snap.Discovery.Created != 1 {
		t.Fatalf("discovery metrics %+v, want %d ingested / 1 created", snap.Discovery, n)
	}
}

// TestIngestTTLEvictionMidStream advances a fake clock between ingests:
// the idle domain is evicted (and its forms forgotten) while the fresh
// one survives, and re-ingesting an evicted form rediscovers the domain.
func TestIngestTTLEvictionMidStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Lexicon: ingestLexicon(), DiscoverTTL: time.Minute})
	clock := time.Unix(0, 0)
	var mu sync.Mutex
	s.discoverNow = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}

	first := ingestSource(t, ts.URL, ingestTree("flights-a", "Passenger", "Destination"))
	advance(30 * time.Second)
	ingestSource(t, ts.URL, ingestTree("books-a", "Author", "Title"))
	advance(31 * time.Second)

	// flights is now 61s idle and gone; books (31s) survives.
	var listing discoveredResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/domains/discovered", nil, &listing)
	if len(listing.Domains) != 1 {
		t.Fatalf("after TTL: %d domains, want 1", len(listing.Domains))
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/domains/discovered/"+first.Assignments[0].Domain, nil, &errorEnvelope{}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted domain lookup: status %d, want 404", resp.StatusCode)
	}

	// Eviction forgot the form: re-ingesting rediscovers, not duplicates.
	again := ingestSource(t, ts.URL, ingestTree("flights-a", "Passenger", "Destination"))
	aa := again.Assignments[0]
	if !aa.New || aa.Duplicate {
		t.Fatalf("re-ingest after eviction: %+v, want new domain", again)
	}
	var snap snapshot
	decodeBody(t, mustGet(t, ts.URL+"/metrics"), &snap)
	if snap.Discovery.Evicted != 1 || snap.Discovery.Active != 2 {
		t.Fatalf("discovery metrics %+v, want 1 evicted / 2 active", snap.Discovery)
	}
}

// TestIngestErrors pins the error envelopes: 400s for malformed or empty
// requests and invalid trees, 413 for an oversized body.
func TestIngestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Lexicon: ingestLexicon(), MaxBodyBytes: 2048})
	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"empty request", ingestRequest{}, http.StatusBadRequest, codeBadRequest},
		{"both html and source", ingestRequest{HTML: "<form></form>", Source: ingestTree("x", "A")}, http.StatusBadRequest, codeBadRequest},
		{"formless html", ingestRequest{HTML: "<p>no forms here</p>"}, http.StatusBadRequest, codeBadRequest},
		{"invalid tree", ingestRequest{Source: ingestTree("", "A")}, http.StatusBadRequest, codeBadRequest},
		{"oversized body", ingestRequest{HTML: "<form>" + strings.Repeat("x", 4096) + "</form>"}, http.StatusRequestEntityTooLarge, codeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var envelope errorEnvelope
			resp := doJSON(t, http.MethodPost, ts.URL+"/v1/ingest", tc.body, &envelope)
			if resp.StatusCode != tc.status || envelope.Error.Code != tc.code {
				t.Fatalf("got status %d code %q, want %d %q",
					resp.StatusCode, envelope.Error.Code, tc.status, tc.code)
			}
		})
	}

	// Errors must not create discovery state.
	var snap snapshot
	decodeBody(t, mustGet(t, ts.URL+"/metrics"), &snap)
	if snap.Discovery.Ingested != 0 || snap.Discovery.Active != 0 {
		t.Fatalf("errors left discovery state: %+v", snap.Discovery)
	}
}

// TestIngestMergePublishesMergedDomain bridges two discovered domains and
// checks the merged integration is published for translate.
func TestIngestMergePublishesMergedDomain(t *testing.T) {
	_, ts := newTestServer(t, Config{Lexicon: ingestLexicon()})
	ingestSource(t, ts.URL, ingestTree("flights-a", "Passenger", "Destination"))
	ingestSource(t, ts.URL, ingestTree("books-a", "Author", "Title"))

	bridge := ingestSource(t, ts.URL, ingestTree("bridge", "Traveler", "Destination", "Writer", "Title"))
	ba := bridge.Assignments[0]
	if len(ba.Merged) != 2 || bridge.Domains != 1 || ba.Sources != 3 {
		t.Fatalf("bridge: %+v, want merge of both domains", bridge)
	}
	var tr translateResponse
	var listing discoveredResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/domains/discovered", nil, &listing)
	if len(listing.Domains) != 1 || listing.Domains[0].Key != ba.Key {
		t.Fatalf("listing after merge: %+v", listing)
	}
	cluster := listing.Domains[0].Clusters[0].Name
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/translate",
		translateRequest{Key: ba.Key, Query: map[string]string{cluster: "1"}}, &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("translate against merged key: status %d", resp.StatusCode)
	}
	var snap snapshot
	decodeBody(t, mustGet(t, ts.URL+"/metrics"), &snap)
	if snap.Discovery.Merged != 2 || snap.Discovery.Active != 1 {
		t.Fatalf("discovery metrics %+v, want 2 merged / 1 active", snap.Discovery)
	}
}
