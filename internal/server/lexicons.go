package server

import (
	"io"
	"net/http"
	"regexp"

	"qilabel"
)

// Versioned lexicons over HTTP: the server owns a qilabel.LexiconRegistry
// and serves any registered version side by side — the multi-tenant
// story. Every request may select a lexicon by content address or alias
// (the `lexicon` option field, or the X-Lexicon header); the server
// canonicalizes the selection to the full version ID *before* anything is
// keyed on it, so integrators, the result LRU (via Config.Fingerprint →
// CacheKey), warm caches, sessions, snapshots and discovery all namespace
// per version with no possibility of cross-tenant bleed: two tenants
// share a cache entry exactly when their lexicons hold identical facts —
// in which case the entries are byte-identical anyway.
//
//	GET  /v1/lexicons               list registered versions and aliases
//	PUT  /v1/lexicons               register an artifact or plain lexicon
//	                                JSON body; returns the version ID
//	PUT  /v1/lexicons/{id}          register the body and point alias {id}
//	                                at it ({id} may also be the content
//	                                address itself, which is verified)
//	GET  /v1/lexicons/{id}          export one version as a self-verifying
//	                                content-addressed artifact
//	GET  /v1/lexicons/report?from=&to=
//	                                upgrade report: the factual diff
//	                                between two versions plus which cached
//	                                results moving traffic from→to
//	                                invalidates
//
// Hot reload: a registry bound to a directory (qilabeld -lexicon-dir)
// re-scans it on ReloadLexicons (qilabeld -lexicon-reload ticker) and
// lazily when a request names an alias the registry does not know yet —
// dropping a file into the directory makes it servable without a restart.
// Versions are immutable, so a reload can only add versions and move
// aliases; requests already resolved keep running on the exact version
// they pinned.

// hexID matches a full SHA-256 content address.
var hexID = regexp.MustCompile(`^[0-9a-f]{64}$`)

// lexiconFromRequest applies the X-Lexicon header as a fallback for an
// options field left empty, so clients can route by header alone.
func lexiconFromRequest(r *http.Request, o requestOptions) requestOptions {
	if o.Lexicon == "" && r != nil {
		o.Lexicon = r.Header.Get("X-Lexicon")
	}
	return o
}

// resolveLexicon canonicalizes o.Lexicon to the full content address of
// the version it names (resolving aliases), rescanning the lexicon
// directory once on a miss so freshly dropped files resolve without a
// restart. The empty selection — and any selection resolving to the
// server's default lexicon — stays "", keeping one cache namespace for
// the default however it is spelled.
func (s *Server) resolveLexicon(o requestOptions) (requestOptions, *apiError) {
	if o.Lexicon == "" {
		return o, nil
	}
	id, _, err := s.registry.Resolve(o.Lexicon)
	if err != nil {
		if _, rerr := s.registry.Rescan(); rerr == nil {
			id, _, err = s.registry.Resolve(o.Lexicon)
		}
	}
	if err != nil {
		return o, &apiError{http.StatusNotFound, codeNotFound,
			"unknown lexicon " + o.Lexicon + "; register it with PUT /v1/lexicons or list GET /v1/lexicons"}
	}
	if id == s.defaultLexiconID() {
		id = ""
	}
	o.Lexicon = id
	return o, nil
}

// defaultLexiconID is the content address of the lexicon an optionless
// request runs on: the configured override, or the embedded default.
func (s *Server) defaultLexiconID() string {
	s.defaultIDOnce.Do(func() {
		if s.cfg.Lexicon != nil {
			s.defaultID = s.cfg.Lexicon.VersionID()
			return
		}
		s.defaultID = qilabel.DefaultLexicon().VersionID()
	})
	return s.defaultID
}

// requestLexicon maps a *resolved* options value back to the lexicon the
// integrator will run on (nil: the server default). It cannot miss for
// values produced by resolveLexicon, but persisted snapshot entries carry
// ids from an earlier process, so the error path stays live.
func (s *Server) requestLexicon(o requestOptions) (*qilabel.Lexicon, error) {
	if o.Lexicon == "" {
		return s.cfg.Lexicon, nil
	}
	_, lex, err := s.registry.Resolve(o.Lexicon)
	return lex, err
}

// lexiconLabel is the /metrics label of a resolved selection.
func lexiconLabel(resolved string) string {
	if resolved == "" {
		return qilabel.DefaultLexiconAlias
	}
	return resolved
}

// LoadLexiconDir binds the server's lexicon registry to dir and loads
// every *.json file in it (file base names become aliases). Partial
// failures load the good files and return the error for logging.
func (s *Server) LoadLexiconDir(dir string) (int, error) {
	return s.registry.LoadDir(dir)
}

// ReloadLexicons rescans the bound lexicon directory — hot reload. Safe
// under full traffic: in-flight requests keep the versions they resolved.
func (s *Server) ReloadLexicons() (int, error) {
	return s.registry.Rescan()
}

// LexiconRegistry exposes the server's registry (tests and embedders).
func (s *Server) LexiconRegistry() *qilabel.LexiconRegistry { return s.registry }

// lexiconsMetrics composes the /metrics lexicon section from the
// registry gauges and the per-version traffic columns.
func (s *Server) lexiconsMetrics() lexiconsSnapshot {
	st := s.registry.Stats()
	return lexiconsSnapshot{
		Versions:   st.Versions,
		Aliases:    st.Aliases,
		Puts:       st.Puts,
		Evictions:  st.Evictions,
		Reloads:    st.Reloads,
		PerLexicon: s.metrics.lexiconUsage(),
	}
}

// ---- request/response shapes -------------------------------------------

type lexiconListResponse struct {
	// Lexicons lists every registered version, the default first.
	Lexicons []qilabel.LexiconVersion `json:"lexicons"`
	// Default is the content address an optionless request runs on (the
	// -lexicon override when configured, else the embedded default).
	Default string `json:"default"`
}

type lexiconPutResponse struct {
	// ID is the verified content address of the registered version.
	ID    string `json:"id"`
	Short string `json:"short"`
	// Alias echoes the alias the PUT bound, if any.
	Alias string `json:"alias,omitempty"`
}

// lexiconReportEntry is one cached result the upgrade touches.
type lexiconReportEntry struct {
	// Key is the entry's cache key under the old version; NewKey the key
	// the same sources produce under the new version.
	Key    string `json:"key"`
	NewKey string `json:"newKey"`
	Domain string `json:"domain,omitempty"`
	// Invalidated is true when NewKey is cold: moving this traffic to the
	// new version pays a fresh pipeline run.
	Invalidated bool `json:"invalidated"`
}

type lexiconReportResponse struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Identical is true when both names resolve to the same facts (equal
	// content addresses): the upgrade is a no-op and invalidates nothing.
	Identical bool                `json:"identical"`
	Diff      qilabel.LexiconDiff `json:"diff"`
	// CachedResults lists every result-cache entry currently keyed under
	// the old version; Invalidated counts the ones cold under the new.
	CachedResults []lexiconReportEntry `json:"cachedResults"`
	Invalidated   int                  `json:"invalidated"`
}

// ---- handlers -----------------------------------------------------------

func (s *Server) handleLexiconList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, lexiconListResponse{
		Lexicons: s.registry.List(),
		Default:  s.defaultLexiconID(),
	})
}

func (s *Server) handleLexiconPut(w http.ResponseWriter, r *http.Request) {
	s.putLexicon(w, r, "")
}

func (s *Server) handleLexiconPutNamed(w http.ResponseWriter, r *http.Request) {
	s.putLexicon(w, r, r.PathValue("id"))
}

// putLexicon registers the request body (artifact or plain lexicon JSON)
// and, when name is neither empty nor the resulting content address,
// binds it as an alias. A name that *looks* like a content address but
// does not match the body's is rejected: content addresses are facts,
// not labels.
func (s *Server) putLexicon(w http.ResponseWriter, r *http.Request, name string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
			"lexicon body exceeds the request size limit")
		return
	}
	id, err := s.registry.PutArtifact(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	resp := lexiconPutResponse{ID: id, Short: id[:12]}
	switch {
	case name == "" || name == id:
		// Registered by content alone.
	case hexID.MatchString(name):
		writeError(w, http.StatusConflict, codeBadRequest,
			"body addresses to "+id+", not "+name+"; content addresses cannot be reassigned")
		return
	default:
		if err := s.registry.SetAlias(name, id); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
			return
		}
		resp.Alias = name
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLexiconGet(w http.ResponseWriter, r *http.Request) {
	_, lex, err := s.registry.Resolve(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, codeNotFound,
			"unknown lexicon "+r.PathValue("id")+"; list GET /v1/lexicons for registered versions")
		return
	}
	data, err := lex.EncodeArtifact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleLexiconReport diffs two versions and lists which cached results
// the upgrade invalidates: every result-cache entry keyed under `from`
// is re-keyed under `to` (the pipeline inputs are persisted with the
// entry), and an entry whose new key is cold will pay a fresh pipeline
// run when its traffic moves.
func (s *Server) handleLexiconReport(w http.ResponseWriter, r *http.Request) {
	fromName, toName := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if toName == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"missing ?to=<version|alias>; ?from= defaults to the server default lexicon")
		return
	}
	fromID, fromLex, err := s.resolveReportName(fromName)
	if err != nil {
		writeError(w, http.StatusNotFound, codeNotFound, "from: "+err.Error())
		return
	}
	toID, toLex, err := s.resolveReportName(toName)
	if err != nil {
		writeError(w, http.StatusNotFound, codeNotFound, "to: "+err.Error())
		return
	}
	resp := lexiconReportResponse{
		From:          fromID,
		To:            toID,
		Identical:     fromID == toID,
		Diff:          qilabel.DiffLexicons(fromLex, toLex),
		CachedResults: []lexiconReportEntry{},
	}
	if resp.Identical {
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Re-key every cached entry of the old version under the new one.
	toSelector := toID
	if toID == s.defaultLexiconID() {
		toSelector = ""
	}
	keys, entries := s.cache.Dump()
	for i, e := range entries {
		entryID := e.options.Lexicon
		if entryID == "" {
			entryID = s.defaultLexiconID()
		}
		if entryID != fromID || len(e.sources) == 0 {
			continue
		}
		ropts := e.options
		ropts.Lexicon = toSelector
		ig, igErr := s.integrator(ropts)
		if igErr != nil {
			continue
		}
		newKey := ig.CacheKey(e.sources)
		entry := lexiconReportEntry{
			Key:         keys[i],
			NewKey:      newKey,
			Domain:      e.domain,
			Invalidated: !s.cache.Has(newKey),
		}
		if entry.Invalidated {
			resp.Invalidated++
		}
		resp.CachedResults = append(resp.CachedResults, entry)
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveReportName resolves an upgrade-report operand: empty names the
// server default, anything else a registered version or alias.
func (s *Server) resolveReportName(name string) (string, *qilabel.Lexicon, error) {
	if name == "" {
		if s.cfg.Lexicon != nil {
			return s.defaultLexiconID(), s.cfg.Lexicon, nil
		}
		return s.defaultLexiconID(), qilabel.DefaultLexicon(), nil
	}
	id, lex, err := s.registry.Resolve(name)
	if err != nil {
		if _, rerr := s.registry.Rescan(); rerr == nil {
			id, lex, err = s.registry.Resolve(name)
		}
	}
	if err != nil {
		return "", nil, err
	}
	// A name resolving to the server default under a -lexicon override
	// still reports against the registry's copy (same facts, same id).
	if s.cfg.Lexicon != nil && id == s.defaultLexiconID() {
		return id, s.cfg.Lexicon, nil
	}
	return id, lex, nil
}
