package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"qilabel"
)

// Stateful incremental integration over HTTP: a session owns a live
// qilabel.Session — a mutable source multiset plus the delta caches — so
// clients stream source changes (add, update, remove) and read the
// re-labeled integrated interface after each one, paying only for the
// work the change touched instead of a full /v1/integrate per revision.
//
//	POST   /v1/sessions                         create (options fixed for life)
//	GET    /v1/sessions/{id}                    source hashes + lifetime stats
//	DELETE /v1/sessions/{id}                    close
//	POST   /v1/sessions/{id}/sources            add one source tree
//	PUT    /v1/sessions/{id}/sources/{hash}     replace one source
//	DELETE /v1/sessions/{id}/sources/{hash}     remove one source
//	GET    /v1/sessions/{id}/result             current integration
//
// Sessions are server-owned state bounded two ways: an idle TTL (a
// session untouched for SessionTTL is evicted lazily) and a session cap
// (creating past MaxSessions evicts the least-recently-used session).
// Clients must treat a 404 on a known id as eviction and recreate.
//
// Cache interop: /result publishes the session's outcome into the result
// LRU under the session's cache key — exactly the key a /v1/integrate of
// the same source set computes — so /v1/translate works against it, a
// later identical /v1/integrate is a warm hit, and with -cache-file the
// labeling survives a restart even though the session itself does not.

// sessionStore tracks live sessions with idle-TTL and LRU-cap eviction.
type sessionStore struct {
	mu  sync.Mutex // also guards liveSession.lastUsed
	ttl time.Duration
	max int
	m   map[string]*liveSession
	now func() time.Time // test seam
	// evicted receives the count of sessions dropped by TTL or capacity.
	evicted func(n int)
}

// liveSession is one server-side session. The embedded qilabel.Session
// serializes delta operations internally; lastUsed is guarded by the
// store lock.
type liveSession struct {
	id       string
	sess     *qilabel.Session
	ropts    requestOptions
	created  time.Time
	lastUsed time.Time
}

func newSessionStore(ttl time.Duration, max int, evicted func(int)) *sessionStore {
	return &sessionStore{
		ttl:     ttl,
		max:     max,
		m:       make(map[string]*liveSession),
		now:     time.Now,
		evicted: evicted,
	}
}

// sweep drops expired sessions. Caller holds the lock.
func (st *sessionStore) sweepLocked(now time.Time) {
	if st.ttl <= 0 {
		return
	}
	n := 0
	for id, ls := range st.m {
		if now.Sub(ls.lastUsed) > st.ttl {
			delete(st.m, id)
			n++
		}
	}
	if n > 0 && st.evicted != nil {
		st.evicted(n)
	}
}

// add registers a new session, evicting expired sessions first and the
// least-recently-used one if the store is at capacity.
func (st *sessionStore) add(ls *liveSession) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.sweepLocked(now)
	for st.max > 0 && len(st.m) >= st.max {
		var oldest *liveSession
		for _, cand := range st.m {
			if oldest == nil || cand.lastUsed.Before(oldest.lastUsed) {
				oldest = cand
			}
		}
		delete(st.m, oldest.id)
		if st.evicted != nil {
			st.evicted(1)
		}
	}
	ls.created = now
	ls.lastUsed = now
	st.m[ls.id] = ls
}

// get returns the session and refreshes its idle clock.
func (st *sessionStore) get(id string) (*liveSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.sweepLocked(now)
	ls, ok := st.m[id]
	if ok {
		ls.lastUsed = now
	}
	return ls, ok
}

// remove deletes the session, reporting whether it existed.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.m[id]
	delete(st.m, id)
	return ok
}

// active returns the live session count (after a TTL sweep, so the
// /metrics gauge never counts sessions that are already dead).
func (st *sessionStore) active() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(st.now())
	return len(st.m)
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("sessions: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ---- request/response shapes -------------------------------------------

type sessionCreateRequest struct {
	Options requestOptions `json:"options"`
}

type sessionCreateResponse struct {
	ID string `json:"id"`
	// Fingerprint is the canonical rendering of the session's effective
	// configuration (qilabel.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// TTLSeconds is the idle eviction horizon; every operation on the
	// session resets the clock.
	TTLSeconds float64 `json:"ttlSeconds"`
}

type sessionInfoResponse struct {
	ID          string                `json:"id"`
	Fingerprint string                `json:"fingerprint"`
	Sources     []string              `json:"sources"`
	Key         string                `json:"key,omitempty"`
	Totals      qilabel.SessionTotals `json:"totals"`
	LastOp      *qilabel.SessionStats `json:"lastOp,omitempty"`
}

type sessionSourceRequest struct {
	Source *qilabel.Tree `json:"source"`
}

// sessionOpResponse answers every delta operation: the handle of the
// source the operation created (add/update), the new source count, the
// cache key of the new state, and the operation's delta profile.
type sessionOpResponse struct {
	ID      string               `json:"id"`
	Hash    string               `json:"hash,omitempty"`
	Sources int                  `json:"sources"`
	Key     string               `json:"key,omitempty"`
	Stats   qilabel.SessionStats `json:"stats"`
}

// ---- handlers -----------------------------------------------------------

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if !s.decode(w, r, &req) {
		return
	}
	// The lexicon resolves once, here: the session stays pinned to the
	// exact version it was created under for its whole life, however many
	// hot reloads move the alias it was created with.
	var apiErr *apiError
	req.Options, apiErr = s.resolveLexicon(lexiconFromRequest(r, req.Options))
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	ig, err := s.integrator(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	sess := ig.NewSession()
	ls := &liveSession{id: newSessionID(), sess: sess, ropts: req.Options}
	s.sessions.add(ls)
	s.metrics.sessionsCreated.Add(1)
	writeJSON(w, http.StatusOK, sessionCreateResponse{
		ID:          ls.id,
		Fingerprint: sess.Fingerprint(),
		TTLSeconds:  s.cfg.SessionTTL.Seconds(),
	})
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeSessionNotFound(w)
		return
	}
	resp := sessionInfoResponse{
		ID:          ls.id,
		Fingerprint: ls.sess.Fingerprint(),
		Sources:     ls.sess.SourceHashes(),
		Totals:      ls.sess.Totals(),
	}
	sort.Strings(resp.Sources)
	if len(resp.Sources) > 0 {
		resp.Key = ls.sess.CacheKey()
	}
	if resp.Totals.Ops > 0 {
		st := ls.sess.Stats()
		resp.LastOp = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		writeSessionNotFound(w)
		return
	}
	s.metrics.sessionsClosed.Add(1)
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

func (s *Server) handleSessionAdd(w http.ResponseWriter, r *http.Request) {
	s.sessionDelta(w, r, func(ctx context.Context, ls *liveSession, req sessionSourceRequest) (string, error) {
		if req.Source == nil {
			return "", errBadSourceBody
		}
		return ls.sess.AddSource(ctx, req.Source)
	})
}

func (s *Server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	s.sessionDelta(w, r, func(ctx context.Context, ls *liveSession, req sessionSourceRequest) (string, error) {
		if req.Source == nil {
			return "", errBadSourceBody
		}
		return ls.sess.UpdateSource(ctx, hash, req.Source)
	})
}

func (s *Server) handleSessionRemove(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	s.sessionDelta(w, r, func(ctx context.Context, ls *liveSession, _ sessionSourceRequest) (string, error) {
		return "", ls.sess.RemoveSource(ctx, hash)
	})
}

var errBadSourceBody = errors.New(`no source tree in request body (expected {"source": {...}})`)

// sessionDelta is the shared delta-operation path: resolve the session,
// claim a worker slot (delta recomputes run on the same bounded pool as
// integrations), run the operation under the request timeout, tally the
// per-op metrics and answer with the new state's summary.
func (s *Server) sessionDelta(w http.ResponseWriter, r *http.Request,
	op func(context.Context, *liveSession, sessionSourceRequest) (string, error)) {

	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeSessionNotFound(w)
		return
	}
	var req sessionSourceRequest
	if r.Method != http.MethodDelete && !s.decode(w, r, &req) {
		return
	}
	release, ok := s.acquire()
	if !ok {
		writeAPIError(w, s.apiErrorFor(errSaturated))
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	hash, err := op(ctx, ls, req)
	if err != nil {
		writeAPIError(w, s.sessionErrorFor(err))
		return
	}

	st := ls.sess.Stats()
	s.recordDelta(st)
	resp := sessionOpResponse{ID: ls.id, Hash: hash, Sources: ls.sess.Len(), Stats: st}
	if resp.Sources > 0 {
		resp.Key = ls.sess.CacheKey()
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordDelta feeds one delta operation into the metrics registry.
func (s *Server) recordDelta(st qilabel.SessionStats) {
	switch st.Op {
	case "add":
		s.metrics.deltaAdds.Add(1)
	case "update":
		s.metrics.deltaUpdates.Add(1)
	case "remove":
		s.metrics.deltaRemoves.Add(1)
	}
	s.metrics.deltaReused.Add(int64(st.ComponentsReused))
	s.metrics.deltaRecomputed.Add(int64(st.ComponentsRecomputed))
}

func (s *Server) handleSessionResult(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeSessionNotFound(w)
		return
	}
	res, err := ls.sess.Result()
	if err != nil {
		writeAPIError(w, s.sessionErrorFor(err))
		return
	}
	key := ls.sess.CacheKey()
	if entry, hit := s.cache.Get(key); hit {
		// The session state was already published (or an identical
		// /v1/integrate ran): serve the cached response like a warm
		// integration.
		s.metrics.cacheHits.Add(1)
		s.metrics.recordLexicon(lexiconLabel(ls.ropts.Lexicon), statusHit)
		resp := entry.resp
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Publish into the result cache under the from-scratch key: the
	// equivalence gate guarantees res is byte-identical to what
	// /v1/integrate would compute, so translate, cache persistence and
	// later integrations all interoperate.
	resp := s.complete(key, "", ls.sess.Sources(), ls.ropts, res)
	writeJSON(w, http.StatusOK, resp)
}

// sessionErrorFor maps session-layer errors onto the shared envelope:
// unknown hashes are 404s, an empty session is a 409, everything else
// follows the integration error mapping.
func (s *Server) sessionErrorFor(err error) *apiError {
	switch {
	case errors.Is(err, qilabel.ErrUnknownSource):
		return &apiError{http.StatusNotFound, codeNotFound, err.Error()}
	case errors.Is(err, qilabel.ErrSessionEmpty):
		return &apiError{http.StatusConflict, codeBadRequest,
			"session has no sources; add sources before reading the result"}
	case errors.Is(err, errBadSourceBody):
		return &apiError{http.StatusBadRequest, codeBadRequest, err.Error()}
	default:
		return s.apiErrorFor(err)
	}
}

func writeSessionNotFound(w http.ResponseWriter) {
	writeError(w, http.StatusNotFound, codeNotFound,
		"unknown or evicted session id; create a new session with POST /v1/sessions")
}
