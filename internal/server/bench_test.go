package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchRequest is the Airline-domain integrate request reused by both
// benchmarks; the domain resolves to the paper's 20-interface corpus, so
// the cold path exercises the full match/merge/naming pipeline.
func benchRequest(b *testing.B) *bytes.Reader {
	b.Helper()
	data, err := json.Marshal(integrateRequest{Domain: "Airline"})
	if err != nil {
		b.Fatal(err)
	}
	return bytes.NewReader(data)
}

func benchServe(b *testing.B, s *Server, body *bytes.Reader) {
	b.Helper()
	if _, err := body.Seek(0, 0); err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/integrate", body)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkServerIntegrateCold measures the uncached path: the cache is
// purged every iteration, so each request runs the whole pipeline.
func BenchmarkServerIntegrateCold(b *testing.B) {
	s := New(Config{})
	body := benchRequest(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.cache.Purge()
		b.StartTimer()
		benchServe(b, s, body)
	}
}

// BenchmarkServerIntegrateWarm measures the cached path: after one
// priming request every iteration is a pure LRU hit that bypasses
// match/merge/naming.
func BenchmarkServerIntegrateWarm(b *testing.B) {
	s := New(Config{})
	body := benchRequest(b)
	benchServe(b, s, body) // prime
	if s.cache.Len() != 1 {
		b.Fatal("priming request did not populate the cache")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, s, body)
	}
	if s.metrics.cacheHits.Load() != int64(b.N) {
		b.Fatalf("warm iterations were not all cache hits: %d/%d",
			s.metrics.cacheHits.Load(), b.N)
	}
}
