package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"qilabel"
)

// tenantLexicon builds tenant i's knowledge base: the default facts plus
// a synonym set that CONFLICTS with every other tenant's (the same words
// mapped to different synonyms), so the versions are pairwise distinct
// and a shared cache entry would be semantically wrong.
func tenantLexicon(i int) *qilabel.Lexicon {
	l := qilabel.DefaultLexicon().Clone()
	l.AddSynonyms("from", fmt.Sprintf("origin%02d", i))
	l.AddSynonyms("adult", fmt.Sprintf("grownup%02d", i))
	return l
}

// putLexiconBody registers body under PUT /v1/lexicons[/{name}].
func putLexiconBody(t *testing.T, baseURL, name string, body []byte) (lexiconPutResponse, *http.Response) {
	t.Helper()
	url := baseURL + "/v1/lexicons"
	if name != "" {
		url += "/" + name
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out lexiconPutResponse
	if resp.StatusCode == http.StatusOK {
		decodeBody(t, resp, &out)
	}
	return out, resp
}

// semanticBody reduces an integrate response to its pipeline outcome —
// everything except the cache-routing fields (Key embeds the lexicon
// fingerprint and Cached/Coalesced depend on timing), rendered as
// canonical JSON for byte-level comparison.
func semanticBody(t *testing.T, resp integrateResponse) string {
	t.Helper()
	data, err := json.Marshal(struct {
		Class  string            `json:"class"`
		Labels map[string]string `json:"labels"`
		Tree   *qilabel.Tree     `json:"tree"`
		Text   string            `json:"text"`
		Report reportJSON        `json:"report"`
		Rules  map[string]int    `json:"rules"`
	}{resp.Class, resp.Labels, resp.Tree, resp.Text, resp.Report, resp.Rules})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// dedicatedRun integrates the fixtures on a throwaway single-tenant
// server configured with lex as its only lexicon — the isolation
// reference: what the tenant would get with nobody else around.
func dedicatedRun(t *testing.T, lex *qilabel.Lexicon) string {
	t.Helper()
	_, ts := newTestServer(t, Config{Lexicon: lex})
	var out integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()}), &out)
	return semanticBody(t, out)
}

func artifactOf(t *testing.T, lex *qilabel.Lexicon) []byte {
	t.Helper()
	data, err := lex.EncodeArtifact()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLexiconEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// The empty registry serves exactly the embedded default.
	var list lexiconListResponse
	resp, err := http.Get(ts.URL + "/v1/lexicons")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list)
	if len(list.Lexicons) != 1 || !list.Lexicons[0].Default {
		t.Fatalf("fresh listing = %+v", list)
	}
	if list.Default != s.defaultLexiconID() || list.Lexicons[0].ID != list.Default {
		t.Fatalf("default id mismatch: %+v", list)
	}

	// Register by content, then bind an alias; both spellings resolve.
	lex := tenantLexicon(1)
	put, _ := putLexiconBody(t, ts.URL, "", artifactOf(t, lex))
	if put.ID != lex.VersionID() || put.Alias != "" {
		t.Fatalf("content-only put = %+v, want id %s", put, lex.VersionID())
	}
	named, _ := putLexiconBody(t, ts.URL, "tenant-a", artifactOf(t, lex))
	if named.ID != put.ID || named.Alias != "tenant-a" {
		t.Fatalf("named put = %+v", named)
	}

	// Export round-trips as a verified artifact.
	resp, err = http.Get(ts.URL + "/v1/lexicons/tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if _, id, err := qilabel.DecodeLexiconArtifact(body.Bytes()); err != nil || id != put.ID {
		t.Fatalf("exported artifact: id=%s err=%v", id, err)
	}

	// A name that looks like a content address must match the body.
	wrong := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if _, resp := putLexiconBody(t, ts.URL, wrong, artifactOf(t, lex)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched content-address alias: status %d, want 409", resp.StatusCode)
	}
	if _, resp := putLexiconBody(t, ts.URL, "", []byte("{broken")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}

	// Selection: alias, full id and the X-Lexicon header are one
	// namespace — the same key, so the second request is a warm hit.
	var byAlias integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate",
		integrateRequest{Sources: fixtureSources(), Options: requestOptions{Lexicon: "tenant-a"}}), &byAlias)
	data, _ := json.Marshal(integrateRequest{Sources: fixtureSources()})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/integrate", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Lexicon", put.ID)
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var byHeader integrateResponse
	decodeBody(t, hresp, &byHeader)
	if byHeader.Key != byAlias.Key || !byHeader.Cached {
		t.Fatalf("header selection: key=%s cached=%v, want warm hit on %s", byHeader.Key, byHeader.Cached, byAlias.Key)
	}

	// Spelling the default explicitly keys identically to no selection.
	var plain, byDefault integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()}), &plain)
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate",
		integrateRequest{Sources: fixtureSources(), Options: requestOptions{Lexicon: "default"}}), &byDefault)
	if byDefault.Key != plain.Key || !byDefault.Cached {
		t.Fatalf("explicit default: key=%s cached=%v, want the unselected key %s", byDefault.Key, byDefault.Cached, plain.Key)
	}
	if plain.Key == byAlias.Key {
		t.Fatal("tenant and default share a cache key")
	}

	// Unknown selections answer 404 with guidance.
	resp = postJSON(t, ts.URL+"/v1/integrate",
		integrateRequest{Sources: fixtureSources(), Options: requestOptions{Lexicon: "nobody"}})
	var env errorEnvelope
	decodeBody(t, resp, &env)
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != codeNotFound {
		t.Fatalf("unknown lexicon: status=%d code=%q", resp.StatusCode, env.Error.Code)
	}
	if resp, err := http.Get(ts.URL + "/v1/lexicons/nobody"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export of unknown lexicon: %v / %d", err, resp.StatusCode)
	}

	// Translate guard: a key minted under tenant-a translates only with a
	// matching selection (no selection skips the guard).
	tq := map[string]string{"c_From": "Chicago"}
	resp = postJSON(t, ts.URL+"/v1/translate", translateRequest{Key: byAlias.Key, Query: tq, Lexicon: "default"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-lexicon translate: status %d, want 404", resp.StatusCode)
	}
	var tr translateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/translate", translateRequest{Key: byAlias.Key, Query: tq, Lexicon: "tenant-a"}), &tr)
	if len(tr.SubQueries) == 0 {
		t.Fatal("tenant translate returned no subqueries")
	}
}

func TestLexiconUpgradeReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Warm the default namespace with one integration.
	var base integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()}), &base)

	next := tenantLexicon(9)
	put, _ := putLexiconBody(t, ts.URL, "vnext", artifactOf(t, next))

	var rep lexiconReportResponse
	resp, err := http.Get(ts.URL + "/v1/lexicons/report?to=vnext")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &rep)
	if rep.To != put.ID || rep.Identical {
		t.Fatalf("report = from %s to %s identical=%v", rep.From, rep.To, rep.Identical)
	}
	// tenantLexicon adds the {from,origin09} and {adult,grownup09}
	// synsets; synsets may overlap, so the default's {adult,grownup} is
	// untouched and nothing is removed.
	if len(rep.Diff.SynsetsAdded) != 2 || len(rep.Diff.SynsetsRemoved) != 0 {
		t.Fatalf("diff = %+v", rep.Diff)
	}
	if len(rep.CachedResults) != 1 || rep.Invalidated != 1 {
		t.Fatalf("cached results = %+v invalidated=%d, want 1 cold entry", rep.CachedResults, rep.Invalidated)
	}
	entry := rep.CachedResults[0]
	if entry.Key != base.Key || entry.NewKey == base.Key || !entry.Invalidated {
		t.Fatalf("entry = %+v (base key %s)", entry, base.Key)
	}

	// Integrating under the new version warms exactly the predicted key;
	// the report then shows nothing left to invalidate.
	var upgraded integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate",
		integrateRequest{Sources: fixtureSources(), Options: requestOptions{Lexicon: "vnext"}}), &upgraded)
	if upgraded.Key != entry.NewKey {
		t.Fatalf("new-version key %s, report predicted %s", upgraded.Key, entry.NewKey)
	}
	resp, err = http.Get(ts.URL + "/v1/lexicons/report?to=vnext")
	if err != nil {
		t.Fatal(err)
	}
	rep = lexiconReportResponse{}
	decodeBody(t, resp, &rep)
	if rep.Invalidated != 0 || len(rep.CachedResults) != 1 || rep.CachedResults[0].Invalidated {
		t.Fatalf("post-upgrade report still cold: %+v", rep)
	}

	// Degenerate operands.
	resp, _ = http.Get(ts.URL + "/v1/lexicons/report?from=vnext&to=vnext")
	rep = lexiconReportResponse{}
	decodeBody(t, resp, &rep)
	if !rep.Identical || len(rep.CachedResults) != 0 || !rep.Diff.Identical() {
		t.Fatalf("self-report = %+v", rep)
	}
	if resp, _ := http.Get(ts.URL + "/v1/lexicons/report"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("report without ?to=: status %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/lexicons/report?to=ghost"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("report against unknown version: status %d", resp.StatusCode)
	}
}

// TestTenantIsolation is the pinning suite of the versioned-lexicon
// layer: N tenants with conflicting synonym sets hammer ONE server
// concurrently (run under -race), and the test asserts complete
// isolation three ways —
//
//  1. every response is byte-identical to the tenant's dedicated
//     single-tenant run (no cross-tenant result bleed);
//  2. the per-lexicon /metrics columns show the exact expected deltas:
//     every tenant paid exactly ONE pipeline computation, so no tenant
//     ever hit another tenant's cache entry;
//  3. the shared LRU holds exactly one entry per tenant, all keys
//     pairwise distinct.
func TestTenantIsolation(t *testing.T) {
	const (
		tenants    = 4
		goroutines = 4 // per tenant
		perG       = 5 // requests per goroutine
	)
	s, ts := newTestServer(t, Config{MaxInflight: 32})

	ids := make([]string, tenants)
	want := make([]string, tenants)
	for i := 0; i < tenants; i++ {
		lex := tenantLexicon(i)
		put, resp := putLexiconBody(t, ts.URL, fmt.Sprintf("tenant-%d", i), artifactOf(t, lex))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("registering tenant %d: status %d", i, resp.StatusCode)
		}
		ids[i] = put.ID
		want[i] = dedicatedRun(t, lex)
	}
	for i := 0; i < tenants; i++ {
		for j := i + 1; j < tenants; j++ {
			if ids[i] == ids[j] {
				t.Fatalf("tenants %d and %d share a version id %s", i, j, ids[i])
			}
		}
	}

	// The hammer: all tenants at once, alias and header spellings mixed.
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		keys = make([]map[string]bool, tenants)
	)
	for i := range keys {
		keys[i] = make(map[string]bool)
	}
	errs := make(chan error, tenants*goroutines*perG)
	for tn := 0; tn < tenants; tn++ {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(tn, g int) {
				defer wg.Done()
				for k := 0; k < perG; k++ {
					var resp *http.Response
					if (g+k)%2 == 0 {
						resp = postJSON(t, ts.URL+"/v1/integrate", integrateRequest{
							Sources: fixtureSources(),
							Options: requestOptions{Lexicon: fmt.Sprintf("tenant-%d", tn)},
						})
					} else {
						data, _ := json.Marshal(integrateRequest{Sources: fixtureSources()})
						req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/integrate", bytes.NewReader(data))
						req.Header.Set("Content-Type", "application/json")
						req.Header.Set("X-Lexicon", ids[tn])
						var err error
						resp, err = http.DefaultClient.Do(req)
						if err != nil {
							errs <- err
							continue
						}
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("tenant %d: status %d", tn, resp.StatusCode)
						resp.Body.Close()
						continue
					}
					var out integrateResponse
					decodeBody(t, resp, &out)
					if got := semanticBody(t, out); got != want[tn] {
						errs <- fmt.Errorf("tenant %d: response diverges from its dedicated run", tn)
					}
					mu.Lock()
					keys[tn][out.Key] = true
					mu.Unlock()
				}
			}(tn, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// One key per tenant, pairwise distinct, one LRU entry each.
	all := make(map[string]int)
	for tn, ks := range keys {
		if len(ks) != 1 {
			t.Errorf("tenant %d produced %d distinct keys, want 1", tn, len(ks))
		}
		for k := range ks {
			if prev, dup := all[k]; dup {
				t.Errorf("tenants %d and %d share cache key %s", prev, tn, k)
			}
			all[k] = tn
		}
	}
	if s.cache.Len() != tenants {
		t.Errorf("cache holds %d entries, want exactly %d (one per tenant)", s.cache.Len(), tenants)
	}

	// Exact per-lexicon metric deltas: requests all accounted for, and
	// exactly one miss (= one pipeline computation) per tenant — zero
	// cross-tenant cache hits, observable straight off /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	decodeBody(t, resp, &snap)
	const perTenant = goroutines * perG
	for tn, id := range ids {
		col, ok := snap.Lexicons.PerLexicon[id]
		if !ok {
			t.Errorf("tenant %d (%s) has no metrics column", tn, id)
			continue
		}
		if col.Requests != perTenant {
			t.Errorf("tenant %d: requests = %d, want %d", tn, col.Requests, perTenant)
		}
		if col.CacheMisses != 1 {
			t.Errorf("tenant %d: misses = %d, want exactly 1", tn, col.CacheMisses)
		}
		if col.CacheHits+col.Coalesced != perTenant-1 {
			t.Errorf("tenant %d: hits(%d)+coalesced(%d) != %d", tn, col.CacheHits, col.Coalesced, perTenant-1)
		}
	}
	if _, ok := snap.Lexicons.PerLexicon[qilabel.DefaultLexiconAlias]; ok {
		t.Error("default column exists though no request ran on the default lexicon")
	}
	if snap.Lexicons.Versions != tenants+1 {
		t.Errorf("registry holds %d versions, want %d tenants + default", snap.Lexicons.Versions, tenants)
	}
}

// TestLexiconHotReloadUnderTraffic swaps a lexicon version mid-flight
// while 32 goroutines stream integrate, session and ingest traffic
// against its alias (run under -race). Pinned by the immutability of
// registered versions:
//
//   - no request fails across the swap, and every integration result is
//     exactly the old or the new version's (never a blend);
//   - a session created before the swap stays pinned to the old version
//     for its whole life, while sessions created after run on the new;
//   - the warm caches never reset: hot reload registers NEW versions
//     instead of mutating (Generation() never bumps), so epochResets
//     stays zero — the "exactly once per Generation bump" contract with
//     zero bumps.
func TestLexiconHotReloadUnderTraffic(t *testing.T) {
	lexA, lexB := tenantLexicon(20), tenantLexicon(21)
	wantA, wantB := dedicatedRun(t, lexA), dedicatedRun(t, lexB)

	dir := t.TempDir()
	file := filepath.Join(dir, "tenant.json")
	if err := os.WriteFile(file, artifactOf(t, lexA), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{MaxInflight: 64})
	if n, err := s.LoadLexiconDir(dir); n != 1 || err != nil {
		t.Fatalf("LoadLexiconDir = %d, %v", n, err)
	}

	// A session created before the swap pins version A for life.
	var pinned sessionCreateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/sessions",
		sessionCreateRequest{Options: requestOptions{Lexicon: "tenant"}}), &pinned)

	integrateOnce := func(g, k int) (string, error) {
		resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{
			Sources: fixtureSources(),
			Options: requestOptions{Lexicon: "tenant"},
		})
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return "", fmt.Errorf("goroutine %d op %d: status %d", g, k, resp.StatusCode)
		}
		var out integrateResponse
		decodeBody(t, resp, &out)
		return semanticBody(t, out), nil
	}

	sessionOnce := func(g, k int) (string, error) {
		var created sessionCreateResponse
		decodeBody(t, postJSON(t, ts.URL+"/v1/sessions",
			sessionCreateRequest{Options: requestOptions{Lexicon: "tenant"}}), &created)
		for _, src := range fixtureSources() {
			resp := postJSON(t, ts.URL+"/v1/sessions/"+created.ID+"/sources", sessionSourceRequest{Source: src})
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				return "", fmt.Errorf("goroutine %d op %d: session add status %d", g, k, resp.StatusCode)
			}
			resp.Body.Close()
		}
		resp, err := http.Get(ts.URL + "/v1/sessions/" + created.ID + "/result")
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return "", fmt.Errorf("goroutine %d op %d: session result status %d", g, k, resp.StatusCode)
		}
		var out integrateResponse
		decodeBody(t, resp, &out)
		return semanticBody(t, out), nil
	}

	ingestOnce := func(g, k int) error {
		resp := postJSON(t, ts.URL+"/v1/ingest",
			ingestRequest{Source: fixtureSources()[g%3], Lexicon: "tenant"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("goroutine %d op %d: ingest status %d", g, k, resp.StatusCode)
		}
		return nil
	}

	// Deterministic pre-swap traffic: version A serves at least once, so
	// its /metrics column exists whatever the swap race below does.
	if got, err := integrateOnce(-2, -2); err != nil || got != wantA {
		t.Fatalf("pre-swap traffic: err=%v, matches old version: %v", err, got == wantA)
	}

	const goroutines, perG = 32, 4
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	bodies := make(chan string, goroutines*perG)
	swap := make(chan struct{}) // closed after the reload completes
	wg.Add(1)
	go func() { // the swapper, concurrent with the traffic
		defer wg.Done()
		if err := os.WriteFile(file, artifactOf(t, lexB), 0o644); err != nil {
			errCh <- err
		}
		if _, err := s.ReloadLexicons(); err != nil {
			errCh <- fmt.Errorf("hot reload: %w", err)
		}
		close(swap)
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				var body string
				var err error
				switch g % 3 {
				case 0:
					body, err = integrateOnce(g, k)
				case 1:
					body, err = sessionOnce(g, k)
				default:
					err = ingestOnce(g, k)
				}
				if err != nil {
					errCh <- err
				} else if body != "" {
					bodies <- body
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	close(bodies)
	for err := range errCh {
		t.Error(err)
	}
	for body := range bodies {
		if body != wantA && body != wantB {
			t.Error("a mid-swap response matches neither version's dedicated run")
		}
	}

	// After the swap the alias serves B...
	<-swap
	if got, err := integrateOnce(-1, -1); err != nil || got != wantB {
		t.Fatalf("post-reload alias traffic: err=%v, matches new version: %v", err, got == wantB)
	}
	// ...while the pre-swap session still answers with A: its lexicon
	// resolved at creation and registered versions are immutable.
	for _, src := range fixtureSources() {
		resp := postJSON(t, ts.URL+"/v1/sessions/"+pinned.ID+"/sources", sessionSourceRequest{Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pinned session add: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + pinned.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var pinnedOut integrateResponse
	decodeBody(t, resp, &pinnedOut)
	if got := semanticBody(t, pinnedOut); got != wantA {
		t.Fatal("session created before the swap no longer runs on its pinned version")
	}
	var fresh sessionCreateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/sessions",
		sessionCreateRequest{Options: requestOptions{Lexicon: "tenant"}}), &fresh)
	if fresh.Fingerprint == pinned.Fingerprint {
		t.Fatal("a session created after the swap shares the pinned session's fingerprint")
	}

	// Both versions live side by side; the warm caches never reset.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	decodeBody(t, mresp, &snap)
	if snap.Warm.EpochResets != 0 {
		t.Errorf("hot reload reset warm caches %d times; immutable versions must never bump Generation", snap.Warm.EpochResets)
	}
	if snap.Lexicons.Versions != 3 { // default + A + B
		t.Errorf("registry holds %d versions after the swap, want 3", snap.Lexicons.Versions)
	}
	if snap.Lexicons.Reloads < 1 {
		t.Errorf("reload counter = %d, want >= 1", snap.Lexicons.Reloads)
	}
	if _, ok := snap.Lexicons.PerLexicon[lexA.VersionID()]; !ok {
		t.Error("no traffic column for the pre-swap version")
	}
	if _, ok := snap.Lexicons.PerLexicon[lexB.VersionID()]; !ok {
		t.Error("no traffic column for the post-swap version")
	}
}
