package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"qilabel"
)

// doJSON issues a request with an arbitrary method and decodes the reply.
func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		decodeBody(t, resp, out)
	} else {
		resp.Body.Close()
	}
	return resp
}

func createSession(t *testing.T, url string, opts requestOptions) sessionCreateResponse {
	t.Helper()
	var out sessionCreateResponse
	resp := doJSON(t, http.MethodPost, url+"/v1/sessions", sessionCreateRequest{Options: opts}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	if out.ID == "" || out.Fingerprint == "" {
		t.Fatalf("bad create response: %+v", out)
	}
	return out
}

// TestSessionLifecycleHTTP drives a session through adds, a result read,
// an update, a remove and a close, pinning the equivalence with
// /v1/integrate, the translate interop and every sessions metric the
// /metrics endpoint exposes.
func TestSessionLifecycleHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sources := fixtureSources()
	created := createSession(t, ts.URL, requestOptions{})

	// Add each source, asserting hash/count bookkeeping per delta.
	var ops []sessionOpResponse
	for i, src := range sources {
		var op sessionOpResponse
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/sources",
			sessionSourceRequest{Source: src}, &op)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add source %d: status %d", i, resp.StatusCode)
		}
		if op.Hash == "" || op.Sources != i+1 || op.Key == "" {
			t.Fatalf("bad add response: %+v", op)
		}
		if op.Stats.Op != "add" || op.Stats.Components == 0 {
			t.Fatalf("bad add stats: %+v", op.Stats)
		}
		ops = append(ops, op)
	}

	// The session result must byte-match a from-scratch /v1/integrate of
	// the same source set (modulo the Cached flag), and arrive under the
	// same cache key.
	var got integrateResponse
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID+"/result", nil, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	var want integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: sources}), &want)
	if !want.Cached {
		t.Fatal("integrate after session result was not a cache hit — keys diverge")
	}
	if got.Key != want.Key {
		t.Fatalf("session key %s != integrate key %s", got.Key, want.Key)
	}
	gj, _ := json.Marshal(got)
	want.Cached = false
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("session result != integrate result\nsession: %s\nintegrate: %s", gj, wj)
	}

	// Translate interop: the session's key resolves in the result cache.
	var tr translateResponse
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/translate",
		translateRequest{Key: got.Key, Query: map[string]string{"c_Adult": "2"}}, &tr)
	if resp.StatusCode != http.StatusOK || len(tr.SubQueries) == 0 {
		t.Fatalf("translate against session key: status %d, %+v", resp.StatusCode, tr)
	}

	// Update source 0 to a relabeled variant, then remove the last source.
	variant := qilabel.NewTree("aa",
		qilabel.NewGroup("Travellers",
			qilabel.NewField("Adults", "c_Adult"),
			qilabel.NewField("Children", "c_Child"),
		),
		qilabel.NewField("From", "c_From"),
		qilabel.NewField("To", "c_To"),
	)
	var up sessionOpResponse
	if resp := doJSON(t, http.MethodPut, ts.URL+"/v1/sessions/"+created.ID+"/sources/"+ops[0].Hash,
		sessionSourceRequest{Source: variant}, &up); resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d", resp.StatusCode)
	}
	if up.Stats.Op != "update" || up.Hash == ops[0].Hash || up.Sources != len(sources) {
		t.Fatalf("bad update response: %+v", up)
	}
	var rm sessionOpResponse
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID+"/sources/"+ops[2].Hash, nil, &rm); resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d", resp.StatusCode)
	}
	if rm.Stats.Op != "remove" || rm.Sources != len(sources)-1 {
		t.Fatalf("bad remove response: %+v", rm)
	}

	// Info reflects the source multiset and lifetime totals.
	var info sessionInfoResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil, &info)
	if len(info.Sources) != 2 || info.Totals.Ops != 5 || info.Totals.Adds != 3 ||
		info.Totals.Updates != 1 || info.Totals.Removes != 1 {
		t.Fatalf("bad info: %+v", info)
	}

	// The /metrics sessions section pins every counter.
	var m snapshot
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	sm := m.Sessions
	if sm.Active != 1 || sm.Created != 1 || sm.Closed != 0 || sm.Evicted != 0 {
		t.Fatalf("bad session gauges: %+v", sm)
	}
	if sm.DeltaOps["add"] != 3 || sm.DeltaOps["update"] != 1 || sm.DeltaOps["remove"] != 1 {
		t.Fatalf("bad delta op counters: %+v", sm.DeltaOps)
	}
	if sm.ReusedComponents == 0 {
		t.Fatalf("no component reuse recorded across deltas: %+v", sm)
	}
	if sm.RecomputedComponents == 0 {
		t.Fatalf("no component recomputation recorded: %+v", sm)
	}

	// Close; the id is gone and the gauge drops.
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed session still resolves: status %d", resp.StatusCode)
	}
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.Sessions.Active != 0 || m.Sessions.Closed != 1 {
		t.Fatalf("bad gauges after close: %+v", m.Sessions)
	}
	_ = s
}

// TestSessionErrors exercises the error envelope: unknown ids, unknown
// hashes, empty-session results and malformed bodies.
func TestSessionErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	created := createSession(t, ts.URL, requestOptions{})

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		{"unknown id", http.MethodGet, "/v1/sessions/nope/result", nil, 404, codeNotFound},
		{"unknown id op", http.MethodPost, "/v1/sessions/nope/sources", sessionSourceRequest{Source: fixtureSources()[0]}, 404, codeNotFound},
		{"empty result", http.MethodGet, "/v1/sessions/" + created.ID + "/result", nil, 409, codeBadRequest},
		{"missing source", http.MethodPost, "/v1/sessions/" + created.ID + "/sources", sessionSourceRequest{}, 400, codeBadRequest},
		{"unknown hash remove", http.MethodDelete, "/v1/sessions/" + created.ID + "/sources/deadbeef", nil, 404, codeNotFound},
		{"unknown hash update", http.MethodPut, "/v1/sessions/" + created.ID + "/sources/deadbeef", sessionSourceRequest{Source: fixtureSources()[0]}, 404, codeNotFound},
		{"unknown session close", http.MethodDelete, "/v1/sessions/nope", nil, 404, codeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env errorEnvelope
			resp := doJSON(t, tc.method, ts.URL+tc.path, tc.body, &env)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q", env.Error.Code, tc.code)
			}
		})
	}
}

// TestSessionTTLEviction pins the idle-TTL sweep with a fake clock.
func TestSessionTTLEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	now := time.Now()
	s.sessions.now = func() time.Time { return now }

	created := createSession(t, ts.URL, requestOptions{})
	if got := s.sessions.active(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}

	// Touch inside the horizon: survives.
	now = now.Add(50 * time.Second)
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("session evicted before its TTL: %d", resp.StatusCode)
	}

	// Idle past the horizon: evicted, 404s, counted.
	now = now.Add(61 * time.Second)
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session still resolves: %d", resp.StatusCode)
	}
	if got := s.metrics.sessionsEvicted.Load(); got != 1 {
		t.Fatalf("evicted counter = %d, want 1", got)
	}
}

// TestSessionCapEviction pins the LRU-cap eviction on create.
func TestSessionCapEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	now := time.Now()
	s.sessions.now = func() time.Time { return now }

	a := createSession(t, ts.URL, requestOptions{})
	now = now.Add(time.Second)
	b := createSession(t, ts.URL, requestOptions{})
	now = now.Add(time.Second)
	// Touch a so b becomes the LRU victim.
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+a.ID, nil, nil)
	now = now.Add(time.Second)
	c := createSession(t, ts.URL, requestOptions{})

	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+a.ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recently used session was evicted: %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+b.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("LRU session survived the cap: %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+c.ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("new session missing: %d", resp.StatusCode)
	}
	if got := s.metrics.sessionsEvicted.Load(); got != 1 {
		t.Fatalf("evicted counter = %d, want 1", got)
	}
}

// TestSessionMatcherDeltaReuse drives a matcher session and checks that
// the pair-verdict cache shows up in the per-op stats over HTTP.
func TestSessionMatcherDeltaReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	created := createSession(t, ts.URL, requestOptions{Matcher: true})

	unannotated := []*qilabel.Tree{
		qilabel.NewTree("s1",
			qilabel.NewField("From City", "", "Boston", "Denver"),
			qilabel.NewField("To City", "", "Chicago", "Austin"),
		),
		qilabel.NewTree("s2",
			qilabel.NewField("Departure City", "", "Boston", "Denver"),
			qilabel.NewField("Destination City", "", "Chicago", "Austin"),
		),
		qilabel.NewTree("s3",
			qilabel.NewField("From City", "", "Boston", "Denver", "Seattle"),
			qilabel.NewField("To City", "", "Chicago", "Austin", "Memphis"),
		),
	}
	var last sessionOpResponse
	for _, src := range unannotated {
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/sources",
			sessionSourceRequest{Source: src}, &last); resp.StatusCode != http.StatusOK {
			t.Fatalf("add: status %d", resp.StatusCode)
		}
	}
	if last.Stats.PairHits == 0 {
		t.Fatalf("matcher session shows no pair-verdict reuse: %+v", last.Stats)
	}
	var got integrateResponse
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID+"/result", nil, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	var want integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate",
		integrateRequest{Sources: unannotated, Options: requestOptions{Matcher: true}}), &want)
	if got.Key != want.Key || !want.Cached {
		t.Fatalf("matcher session key mismatch: session %s integrate %s (cached=%v)", got.Key, want.Key, want.Cached)
	}
}
