package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qilabel"
)

// fixtureSources mirrors the paper's Figure 2 airline example: three
// sources with annotated clusters, one of them a 1:m aggregate.
func fixtureSources() []*qilabel.Tree {
	return []*qilabel.Tree{
		qilabel.NewTree("aa",
			qilabel.NewGroup("Passengers",
				qilabel.NewField("Adults", "c_Adult"),
				qilabel.NewField("Children", "c_Child"),
			),
			qilabel.NewField("From", "c_From"),
			qilabel.NewField("To", "c_To"),
		),
		qilabel.NewTree("british",
			qilabel.NewGroup("How many people are going?",
				qilabel.NewField("Seniors", "c_Senior"),
				qilabel.NewField("Adults", "c_Adult"),
				qilabel.NewField("Children", "c_Child"),
			),
			qilabel.NewField("Departure City", "c_From"),
			qilabel.NewField("Destination City", "c_To"),
		),
		qilabel.NewTree("vacations",
			qilabel.NewMultiField("Passengers", "c_Senior", "c_Adult", "c_Child"),
			qilabel.NewField("Leaving From", "c_From"),
			qilabel.NewField("Going To", "c_To"),
		),
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestIntegrateHappyPathAndWarmCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := integrateRequest{Sources: fixtureSources()}

	resp := postJSON(t, ts.URL+"/v1/integrate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var cold integrateResponse
	decodeBody(t, resp, &cold)
	if cold.Key == "" || cold.Cached || cold.Tree == nil {
		t.Fatalf("bad cold response: key=%q cached=%v tree=%v", cold.Key, cold.Cached, cold.Tree)
	}
	if cold.Labels["c_Adult"] == "" {
		t.Fatalf("no label for c_Adult: %v", cold.Labels)
	}
	if cold.Class == "" {
		t.Fatal("no classification")
	}

	// Same pool, different listing order: must be a pure cache hit.
	shuffled := fixtureSources()
	shuffled[0], shuffled[2] = shuffled[2], shuffled[0]
	var warm integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: shuffled}), &warm)
	if !warm.Cached {
		t.Fatal("reordered identical pool was not served from the cache")
	}
	if warm.Key != cold.Key {
		t.Fatalf("key changed with source order: %q vs %q", warm.Key, cold.Key)
	}
	if hits := s.metrics.cacheHits.Load(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

func TestIntegrateBuiltinDomain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Domain: "Airline"}), &out)
	if out.Key == "" || out.Tree == nil || out.Report.IntLeaves == 0 {
		t.Fatalf("bad domain response: %+v", out.Report)
	}
}

func TestIntegrateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"malformed json", `{"sources": [`, "malformed request body"},
		{"empty", `{}`, "no source interfaces"},
		{"both", `{"domain":"Airline","sources":[{"interface":"a","root":{}}]}`, "not both"},
		{"unknown domain", `{"domain":"Groceries"}`, "unknown domain"},
		{"invalid tree", `{"sources":[{"root":{"children":[{"label":"x"}]}}]}`, "interface name"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/integrate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: body %q is not an error envelope: %v", tc.name, body, err)
			continue
		}
		if env.Error.Code != codeBadRequest {
			t.Errorf("%s: error code = %q, want %q", tc.name, env.Error.Code, codeBadRequest)
		}
		if !strings.Contains(env.Error.Message, tc.want) {
			t.Errorf("%s: message %q does not mention %q", tc.name, env.Error.Message, tc.want)
		}
	}
}

// TestErrorEnvelopeCodes pins the machine-readable code of each
// non-400 error path.
func TestErrorEnvelopeCodes(t *testing.T) {
	t.Run("too_large", func(t *testing.T) {
		_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
		resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()})
		var env errorEnvelope
		decodeBody(t, resp, &env)
		if resp.StatusCode != http.StatusRequestEntityTooLarge || env.Error.Code != codeTooLarge {
			t.Fatalf("status=%d code=%q, want 413/%q", resp.StatusCode, env.Error.Code, codeTooLarge)
		}
	})
	t.Run("not_found", func(t *testing.T) {
		_, ts := newTestServer(t, Config{})
		resp := postJSON(t, ts.URL+"/v1/translate", translateRequest{Key: "deadbeef"})
		var env errorEnvelope
		decodeBody(t, resp, &env)
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != codeNotFound {
			t.Fatalf("status=%d code=%q, want 404/%q", resp.StatusCode, env.Error.Code, codeNotFound)
		}
	})
}

func TestOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestSaturationReturns503(t *testing.T) {
	entered := make(chan struct{})
	unblock := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	s.testHookSlow = func() {
		entered <- struct{}{}
		<-unblock
	}

	errCh := make(chan error, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errCh <- fmt.Errorf("first request: status %d", resp.StatusCode)
		} else {
			errCh <- nil
		}
	}()
	<-entered // the single worker slot is now held

	resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Domain: "Book"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var env errorEnvelope
	decodeBody(t, resp, &env)
	if env.Error.Code != codeSaturated {
		t.Fatalf("error code = %q, want %q", env.Error.Code, codeSaturated)
	}

	close(unblock)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutCancelsAndCachesNothing: on expiry the request answers 504
// immediately; the abandoned flight (its last waiter gone) is canceled,
// the worker slot frees, and no partial result reaches the cache — a retry
// of the same key is a fresh cold computation, not a hit.
func TestTimeoutCancelsAndCachesNothing(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 30 * time.Millisecond})
	s.testHookSlow = func() { time.Sleep(150 * time.Millisecond) }

	resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()})
	var env errorEnvelope
	decodeBody(t, resp, &env)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if env.Error.Code != codeTimeout {
		t.Fatalf("error code = %q, want %q", env.Error.Code, codeTimeout)
	}

	// The 504 answers while the abandoned run winds down in the
	// background; wait for it to cancel, free its slot and leave the
	// flight group.
	waitDrained(t, s)
	if s.cache.Len() != 0 {
		t.Fatalf("canceled integration reached the cache (%d entries)", s.cache.Len())
	}

	// A retry with a sane budget recomputes and succeeds.
	s.testHookSlow = nil
	s.cfg.RequestTimeout = 5 * time.Second
	var retry integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()}), &retry)
	if retry.Cached {
		t.Fatal("retry was a cache hit: the timed-out run must not have cached")
	}
	if retry.Key == "" || retry.Tree == nil {
		t.Fatal("retry did not produce a result")
	}
}

// waitDrained blocks until no computation is in flight and no flight
// remains in the coalescing group (or fails the test after 2 s).
func waitDrained(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.metrics.inflight.Load() != 0 || s.flights.inflightKeys() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server did not drain: inflight=%d flights=%d",
				s.metrics.inflight.Load(), s.flights.inflightKeys())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientCancelDoesNotCache drops the connection mid-computation: the
// pipeline must stop, free its slot, and cache nothing.
func TestClientCancelDoesNotCache(t *testing.T) {
	entered := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	s.testHookSlow = func() {
		close(entered)
		time.Sleep(100 * time.Millisecond)
	}

	data, _ := json.Marshal(integrateRequest{Sources: fixtureSources()})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/integrate", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()
	<-done

	deadline := time.Now().Add(2 * time.Second)
	for s.metrics.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d after client cancel, want 0", s.metrics.inflight.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.cache.Len() != 0 {
		t.Fatalf("canceled integration reached the cache (%d entries)", s.cache.Len())
	}
}

func TestExtract(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	page := `<html><body>
	  <form name="flights">
	    <label for="f">From</label><input id="f" name="from">
	    <label for="t">To</label><input id="t" name="to">
	  </form>
	  <form name="trips">
	    <label for="d">From</label><input id="d" name="depart">
	    <label for="a">To</label><input id="a" name="arrive">
	  </form>
	</body></html>`

	var out extractResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/extract", extractRequest{HTML: page}), &out)
	if len(out.Trees) != 2 {
		t.Fatalf("extracted %d trees, want 2", len(out.Trees))
	}

	var integrated integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/extract",
		extractRequest{HTML: page, Integrate: true}), &integrated)
	if integrated.Key == "" || integrated.Tree == nil {
		t.Fatalf("extract+integrate gave no result: %+v", integrated)
	}

	resp := postJSON(t, ts.URL+"/v1/extract", extractRequest{HTML: "<p>no forms here</p>"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("form-free page: status = %d, want 400", resp.StatusCode)
	}
}

func TestTranslate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var integrated integrateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()}), &integrated)

	var out translateResponse
	decodeBody(t, postJSON(t, ts.URL+"/v1/translate", translateRequest{
		Key:   integrated.Key,
		Query: map[string]string{"c_From": "Chicago", "c_Adult": "2"},
	}), &out)
	if len(out.SubQueries) != 3 {
		t.Fatalf("got %d subqueries, want 3", len(out.SubQueries))
	}
	for _, sub := range out.SubQueries {
		if len(sub.Assignments) == 0 {
			t.Errorf("source %q received no assignments", sub.Interface)
		}
	}

	resp := postJSON(t, ts.URL+"/v1/translate", translateRequest{Key: "deadbeef", Query: nil})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: status = %d, want 404", resp.StatusCode)
	}
}

func TestDomainsHealthzMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var domains map[string][]domainInfo
	resp, err := http.Get(ts.URL + "/v1/domains")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &domains)
	if len(domains["domains"]) != 7 {
		t.Fatalf("got %d domains, want 7", len(domains["domains"]))
	}
	for _, d := range domains["domains"] {
		if d.Interfaces == 0 {
			t.Errorf("domain %q reports no interfaces", d.Name)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Generate one integration, then check the counters surface.
	postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: fixtureSources()}).Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	decodeBody(t, resp, &snap)
	if snap.Endpoints["/v1/integrate"].Count != 1 {
		t.Fatalf("integrate count = %d, want 1", snap.Endpoints["/v1/integrate"].Count)
	}
	if snap.Cache.Misses != 1 || snap.Cache.Entries != 1 {
		t.Fatalf("cache snapshot = %+v", snap.Cache)
	}
	if snap.Naming["total"] == 0 {
		t.Fatal("no inference-rule firings aggregated")
	}
	for _, stage := range []string{"validate", "merge", "naming"} {
		st, ok := snap.Stages[stage]
		if !ok || st.Count == 0 {
			t.Errorf("stage %q missing from metrics: %+v", stage, snap.Stages)
		}
	}
	if snap.Stages["naming"].Units == 0 {
		t.Error("naming stage reports zero units")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.Put("a", &cacheEntry{})
	c.Put("b", &cacheEntry{})
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", &cacheEntry{})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

// TestConcurrentIntegrate hammers /v1/integrate from many goroutines
// (run with -race): a mix of two pools, so cold computations, warm hits
// and saturation rejections interleave.
func TestConcurrentIntegrate(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 4})
	pools := [][]*qilabel.Tree{fixtureSources(), fixtureSources()[:2]}

	const goroutines, perG = 16, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp := postJSON(t, ts.URL+"/v1/integrate",
					integrateRequest{Sources: pools[(g+i)%len(pools)]})
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusServiceUnavailable:
				default:
					errs <- fmt.Errorf("goroutine %d: status %d", g, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	hits, misses := s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load()
	if hits == 0 {
		t.Fatal("no warm cache hits under concurrent load")
	}
	if misses == 0 {
		t.Fatal("no cold misses recorded")
	}
	if s.metrics.inflight.Load() != 0 {
		t.Fatalf("inflight gauge = %d after drain, want 0", s.metrics.inflight.Load())
	}
}

// TestGracefulShutdownDrains verifies http.Server.Shutdown lets an
// in-flight integration finish (the qilabeld exit path).
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{})
	entered := make(chan struct{})
	s.testHookSlow = func() {
		close(entered)
		time.Sleep(150 * time.Millisecond)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)

	status := make(chan int, 1)
	go func() {
		resp := postJSON(t, "http://"+ln.Addr().String()+"/v1/integrate",
			integrateRequest{Sources: fixtureSources()})
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if got := <-status; got != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200", got)
	}
}
