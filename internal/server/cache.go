package server

import (
	"container/list"
	"sync"

	"qilabel"
)

// cacheEntry is one cached integration: the full result (kept for
// /v1/translate, which needs the merge structure), the response body it
// produced (reused verbatim on warm /v1/integrate hits), and the inputs
// that produced it (domain, request options, source trees) so the entry
// can be persisted to disk and deterministically rehydrated after a
// restart. res is nil on entries restored from a snapshot until a
// /v1/translate forces recomputation.
type cacheEntry struct {
	res     *qilabel.Result
	resp    integrateResponse
	domain  string
	options requestOptions
	sources []*qilabel.Tree
}

// lru is a mutex-guarded least-recently-used cache of integration results
// keyed by qilabel.CacheKey. Capacity is a number of entries; the zero
// capacity disables caching (every Get misses, Put is a no-op).
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruItem
	items map[string]*list.Element
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *lru) Get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

func (c *lru) Put(key string, entry *cacheEntry) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).entry = entry
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruItem{key: key, entry: entry})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

// Has reports whether the key is cached without touching recency — the
// upgrade report probes many keys and must not reorder the LRU.
func (c *lru) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Purge drops every entry (used by the cold-path benchmark).
func (c *lru) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
}

// Dump returns every entry with its key, least recently used first, so a
// restore that re-Puts them in order reproduces the recency ranking.
func (c *lru) Dump() (keys []string, entries []*cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Back(); el != nil; el = el.Prev() {
		it := el.Value.(*lruItem)
		keys = append(keys, it.key)
		entries = append(entries, it.entry)
	}
	return keys, entries
}
