package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qilabel"
	"qilabel/internal/naming"
)

// latencyWindow is the number of recent samples kept per endpoint for
// percentile estimation. A fixed ring bounds memory under sustained load.
const latencyWindow = 1024

// metrics aggregates runtime counters for the /metrics endpoint: request
// counts and latency percentiles per endpoint, cache hits/misses, the
// in-flight gauge and the naming pipeline's inference-rule counters
// accumulated across every cold integration.
type metrics struct {
	start time.Time

	inflight    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// coalesced counts requests that joined another identical request's
	// in-flight pipeline run instead of starting their own.
	coalesced atomic.Int64

	// batches / batchItems count /v1/integrate/batch requests and the
	// items they carried.
	batches    atomic.Int64
	batchItems atomic.Int64

	// Cache-persistence counters: snapshot writes, successful restores and
	// entries restored from disk.
	snapshotSaves    atomic.Int64
	snapshotLoads    atomic.Int64
	snapshotRestored atomic.Int64

	// Session counters: lifecycle events, per-kind delta operations, and
	// the pipeline components the delta engine reused vs. recomputed
	// (summed over every delta operation).
	sessionsCreated atomic.Int64
	sessionsEvicted atomic.Int64
	sessionsClosed  atomic.Int64
	deltaAdds       atomic.Int64
	deltaUpdates    atomic.Int64
	deltaRemoves    atomic.Int64
	deltaReused     atomic.Int64
	deltaRecomputed atomic.Int64

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	stages    map[string]*stageStats
	rules     naming.Counters

	// lexicons tallies integration traffic per lexicon version (keyed by
	// the resolved content address; the server default under "default").
	// Per-version hit/miss/coalesced splits are what the tenant-isolation
	// suite asserts: a tenant's hits can only come from its own column.
	lexMu    sync.Mutex
	lexicons map[string]*lexiconCounters
}

// lexiconCounters is one lexicon version's integration traffic.
type lexiconCounters struct {
	requests  int64
	hits      int64
	misses    int64
	coalesced int64
}

type endpointStats struct {
	count  int64
	errors int64
	lat    []time.Duration // ring buffer of recent latencies
	next   int
}

// stageStats aggregates one pipeline stage's observer events: how many
// times the stage ran, how many units (trees, clusters, groups+nodes) it
// processed in total, and a latency ring for percentiles.
type stageStats struct {
	count int64
	units int64
	lat   []time.Duration
	next  int
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointStats),
		stages:    make(map[string]*stageStats),
		lexicons:  make(map[string]*lexiconCounters),
	}
}

// recordLexicon tallies one integration request against its lexicon's
// column. kind is the request's outcome: statusHit, statusCoalesced or
// statusComputed (a cache miss that ran, or led, the pipeline).
func (m *metrics) recordLexicon(label, kind string) {
	m.lexMu.Lock()
	defer m.lexMu.Unlock()
	c := m.lexicons[label]
	if c == nil {
		c = &lexiconCounters{}
		m.lexicons[label] = c
	}
	c.requests++
	switch kind {
	case statusHit:
		c.hits++
	case statusCoalesced:
		c.coalesced++
	case statusComputed:
		c.misses++
	}
}

// lexiconUsage snapshots the per-lexicon traffic columns.
func (m *metrics) lexiconUsage() map[string]lexiconUsageSnapshot {
	m.lexMu.Lock()
	defer m.lexMu.Unlock()
	out := make(map[string]lexiconUsageSnapshot, len(m.lexicons))
	for label, c := range m.lexicons {
		out[label] = lexiconUsageSnapshot{
			Requests:    c.requests,
			CacheHits:   c.hits,
			CacheMisses: c.misses,
			Coalesced:   c.coalesced,
		}
	}
	return out
}

// record tallies one completed request.
func (m *metrics) record(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{}
		m.endpoints[endpoint] = st
	}
	st.count++
	if status >= 400 {
		st.errors++
	}
	if len(st.lat) < latencyWindow {
		st.lat = append(st.lat, d)
	} else {
		st.lat[st.next] = d
		st.next = (st.next + 1) % latencyWindow
	}
}

// observeStage tallies one pipeline stage event; it is the qilabel
// observer hook every cold integration runs with.
func (m *metrics) observeStage(e qilabel.StageEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stages[e.Stage]
	if st == nil {
		st = &stageStats{}
		m.stages[e.Stage] = st
	}
	st.count++
	st.units += int64(e.Units)
	if len(st.lat) < latencyWindow {
		st.lat = append(st.lat, e.Duration)
	} else {
		st.lat[st.next] = e.Duration
		st.next = (st.next + 1) % latencyWindow
	}
}

// addRules accumulates one integration's inference-rule counters.
func (m *metrics) addRules(c naming.Counters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, v := range c.LI {
		m.rules.LI[i] += v
	}
}

// endpointSnapshot is the JSON form of one endpoint's statistics.
type endpointSnapshot struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// stageSnapshot is the JSON form of one pipeline stage's statistics.
type stageSnapshot struct {
	Count int64   `json:"count"`
	Units int64   `json:"units"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// snapshot is the JSON form of the whole registry.
type snapshot struct {
	UptimeSeconds float64                     `json:"uptimeSeconds"`
	Inflight      int64                       `json:"inflight"`
	Cache         cacheSnapshot               `json:"cache"`
	Warm          warmSnapshot                `json:"warm"`
	Batch         batchSnapshot               `json:"batch"`
	Persistence   persistenceSnapshot         `json:"persistence"`
	Sessions      sessionsSnapshot            `json:"sessions"`
	Discovery     discoverySnapshot           `json:"discovery"`
	Lexicons      lexiconsSnapshot            `json:"lexicons"`
	Endpoints     map[string]endpointSnapshot `json:"endpoints"`
	Stages        map[string]stageSnapshot    `json:"stages"`
	Naming        map[string]int              `json:"naming"`
}

// warmSnapshot is the cross-run warm-cache section of /metrics: the
// Integrator-owned caches (label interning, Relate verdicts, matcher block
// keys and pair verdicts, solve/node derivations, source-label memo)
// aggregated over every cached Integrator. HitRate is total hits over
// total probes across every layer — the single number qiload's -warm
// column reports.
type warmSnapshot struct {
	Integrators     int     `json:"integrators"`
	LabelHits       uint64  `json:"labelHits"`
	LabelMisses     uint64  `json:"labelMisses"`
	VerdictHits     uint64  `json:"verdictHits"`
	VerdictMisses   uint64  `json:"verdictMisses"`
	SolveHits       uint64  `json:"solveHits"`
	SolveMisses     uint64  `json:"solveMisses"`
	NodeHits        uint64  `json:"nodeHits"`
	NodeMisses      uint64  `json:"nodeMisses"`
	MatchKeyHits    uint64  `json:"matchKeyHits"`
	MatchKeyMisses  uint64  `json:"matchKeyMisses"`
	MatchPairHits   uint64  `json:"matchPairHits"`
	MatchPairMisses uint64  `json:"matchPairMisses"`
	SourceHits      uint64  `json:"sourceHits"`
	SourceMisses    uint64  `json:"sourceMisses"`
	EpochResets     uint64  `json:"epochResets"`
	HitRate         float64 `json:"hitRate"`
}

// warmSnapshotOf aggregates the warm statistics of the given integrators.
func warmSnapshotOf(stats []qilabel.WarmStats) warmSnapshot {
	w := warmSnapshot{Integrators: len(stats)}
	for _, st := range stats {
		w.LabelHits += st.LabelHits
		w.LabelMisses += st.LabelMisses
		w.VerdictHits += st.VerdictHits
		w.VerdictMisses += st.VerdictMisses
		w.SolveHits += st.SolveHits
		w.SolveMisses += st.SolveMisses
		w.NodeHits += st.NodeHits
		w.NodeMisses += st.NodeMisses
		w.MatchKeyHits += st.MatchKeyHits
		w.MatchKeyMisses += st.MatchKeyMisses
		w.MatchPairHits += st.MatchPairHits
		w.MatchPairMisses += st.MatchPairMisses
		w.SourceHits += st.SourceHits
		w.SourceMisses += st.SourceMisses
		w.EpochResets += st.EpochResets
	}
	hits := w.LabelHits + w.VerdictHits + w.SolveHits + w.NodeHits +
		w.MatchKeyHits + w.MatchPairHits + w.SourceHits
	misses := w.LabelMisses + w.VerdictMisses + w.SolveMisses + w.NodeMisses +
		w.MatchKeyMisses + w.MatchPairMisses + w.SourceMisses
	if hits+misses > 0 {
		w.HitRate = float64(hits) / float64(hits+misses)
	}
	return w
}

type cacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

type batchSnapshot struct {
	Count int64 `json:"count"`
	Items int64 `json:"items"`
}

type persistenceSnapshot struct {
	Saves           int64 `json:"saves"`
	Loads           int64 `json:"loads"`
	RestoredEntries int64 `json:"restoredEntries"`
}

// sessionsSnapshot is the incremental-integration section of /metrics:
// the live-session gauge, lifecycle counters, delta operations by kind,
// and how many pipeline components the delta engine reused vs. recomputed
// across every operation (the incrementality win, observable).
type sessionsSnapshot struct {
	Active               int              `json:"active"`
	Created              int64            `json:"created"`
	Evicted              int64            `json:"evicted"`
	Closed               int64            `json:"closed"`
	DeltaOps             map[string]int64 `json:"deltaOps"`
	ReusedComponents     int64            `json:"reusedComponents"`
	RecomputedComponents int64            `json:"recomputedComponents"`
}

// lexiconsSnapshot is the versioned-lexicon section of /metrics: the
// registry gauges (versions held, aliases bound) and lifecycle counters,
// plus one traffic column per lexicon version that served integration
// requests. Columns are keyed by content address ("default" for the
// server default), so multi-tenant deployments can read per-tenant cache
// behavior — and verify isolation — straight off /metrics.
type lexiconsSnapshot struct {
	Versions   int                             `json:"versions"`
	Aliases    int                             `json:"aliases"`
	Puts       uint64                          `json:"puts"`
	Evictions  uint64                          `json:"evictions"`
	Reloads    uint64                          `json:"reloads"`
	PerLexicon map[string]lexiconUsageSnapshot `json:"perLexicon"`
}

// lexiconUsageSnapshot is one lexicon version's traffic column.
type lexiconUsageSnapshot struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Coalesced   int64 `json:"coalesced"`
}

// discoverySnapshot is the online domain-discovery section of /metrics:
// the live domain/form gauges, lifecycle counters and the effective
// similarity threshold the partition runs under.
type discoverySnapshot struct {
	Active     int     `json:"active"`
	Forms      int     `json:"forms"`
	Ingested   uint64  `json:"ingested"`
	Duplicates uint64  `json:"duplicates"`
	Created    uint64  `json:"created"`
	Merged     uint64  `json:"merged"`
	Evicted    uint64  `json:"evicted"`
	Threshold  float64 `json:"threshold"`
}

func (m *metrics) snapshot(cacheEntries, cacheCap, sessionsActive int) snapshot {
	s := snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Inflight:      m.inflight.Load(),
		Cache: cacheSnapshot{
			Hits:      m.cacheHits.Load(),
			Misses:    m.cacheMisses.Load(),
			Coalesced: m.coalesced.Load(),
			Entries:   cacheEntries,
			Capacity:  cacheCap,
		},
		Batch: batchSnapshot{
			Count: m.batches.Load(),
			Items: m.batchItems.Load(),
		},
		Persistence: persistenceSnapshot{
			Saves:           m.snapshotSaves.Load(),
			Loads:           m.snapshotLoads.Load(),
			RestoredEntries: m.snapshotRestored.Load(),
		},
		Sessions: sessionsSnapshot{
			Active:  sessionsActive,
			Created: m.sessionsCreated.Load(),
			Evicted: m.sessionsEvicted.Load(),
			Closed:  m.sessionsClosed.Load(),
			DeltaOps: map[string]int64{
				"add":    m.deltaAdds.Load(),
				"update": m.deltaUpdates.Load(),
				"remove": m.deltaRemoves.Load(),
			},
			ReusedComponents:     m.deltaReused.Load(),
			RecomputedComponents: m.deltaRecomputed.Load(),
		},
		Endpoints: make(map[string]endpointSnapshot),
		Stages:    make(map[string]stageSnapshot),
		Naming:    make(map[string]int),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, st := range m.endpoints {
		s.Endpoints[name] = endpointSnapshot{
			Count:  st.count,
			Errors: st.errors,
			P50Ms:  percentileMs(st.lat, 0.50),
			P90Ms:  percentileMs(st.lat, 0.90),
			P99Ms:  percentileMs(st.lat, 0.99),
		}
	}
	for name, st := range m.stages {
		s.Stages[name] = stageSnapshot{
			Count: st.count,
			Units: st.units,
			P50Ms: percentileMs(st.lat, 0.50),
			P90Ms: percentileMs(st.lat, 0.90),
			P99Ms: percentileMs(st.lat, 0.99),
		}
	}
	total := 0
	for li := 1; li <= 7; li++ {
		s.Naming["li"+string(rune('0'+li))] = m.rules.LI[li]
		total += m.rules.LI[li]
	}
	s.Naming["total"] = total
	return s
}

// percentileMs returns the q-th percentile of the samples in milliseconds
// (nearest-rank on a sorted copy; 0 with no samples).
func percentileMs(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
