package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"qilabel"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalescingSingleRun fires 50 identical concurrent /v1/integrate
// requests (run under -race): exactly one pipeline execution serves all of
// them — one cache miss, one cache insertion, one set of pipeline-stage
// observer events — and all 50 receive the same successful result.
func TestCoalescingSingleRun(t *testing.T) {
	const clients = 50
	unblock := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxInflight: 2})
	s.testHookSlow = func() {
		// Hold the single flight open until every other request has
		// coalesced onto it, so none can slip in late and hit the cache.
		waitFor(t, "all waiters to coalesce", func() bool {
			return s.metrics.coalesced.Load() == clients-1
		})
		<-unblock
	}

	body, err := json.Marshal(integrateRequest{Sources: fixtureSources()})
	if err != nil {
		t.Fatal(err)
	}
	type reply struct {
		status int
		resp   integrateResponse
	}
	replies := make(chan reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/integrate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			var out integrateResponse
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			replies <- reply{resp.StatusCode, out}
		}()
	}
	// All 49 followers have joined once the hook's wait returns; release
	// the run.
	waitFor(t, "flight to form", func() bool { return s.metrics.coalesced.Load() == clients-1 })
	close(unblock)
	wg.Wait()
	close(replies)

	var key, class string
	n := 0
	for r := range replies {
		n++
		if r.status != http.StatusOK {
			t.Fatalf("status = %d, want 200", r.status)
		}
		if key == "" {
			key, class = r.resp.Key, r.resp.Class
		}
		if r.resp.Key != key || r.resp.Class != class {
			t.Fatalf("divergent responses: key %q/%q class %q/%q", r.resp.Key, key, r.resp.Class, class)
		}
		if r.resp.Cached {
			t.Fatal("a coalesced waiter was reported as a cache hit")
		}
	}
	if n != clients {
		t.Fatalf("got %d replies, want %d", n, clients)
	}

	// Exactly one pipeline execution: the stage observer fired once per
	// stage, the cache saw one miss and holds one entry, and 49 requests
	// coalesced.
	snap := s.metrics.snapshot(s.cache.Len(), s.cfg.CacheSize, 0)
	for _, stage := range []string{"validate", "merge", "naming"} {
		if c := snap.Stages[stage].Count; c != 1 {
			t.Errorf("stage %q ran %d times, want exactly 1", stage, c)
		}
	}
	if snap.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", snap.Cache.Misses)
	}
	if snap.Cache.Coalesced != clients-1 {
		t.Errorf("coalesced = %d, want %d", snap.Cache.Coalesced, clients-1)
	}
	if s.cache.Len() != 1 {
		t.Errorf("cache entries = %d, want exactly 1 insertion", s.cache.Len())
	}
	waitDrained(t, s)
}

// TestCoalescingLeaderDisconnect: the request that initiated the run
// disconnects mid-flight while a second identical request waits. The
// shared run must keep going — only the last waiter leaving cancels it —
// and the surviving waiter still receives the full result.
func TestCoalescingLeaderDisconnect(t *testing.T) {
	entered := make(chan struct{})
	unblock := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	s.testHookSlow = func() {
		close(entered)
		<-unblock
	}

	body, err := json.Marshal(integrateRequest{Sources: fixtureSources()})
	if err != nil {
		t.Fatal(err)
	}

	// The initiating client, on a cancellable context.
	ctx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/integrate", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	// A second identical request joins the flight.
	type result struct {
		status int
		resp   integrateResponse
	}
	waiterDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/integrate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			waiterDone <- result{}
			return
		}
		var out integrateResponse
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Error(err)
		}
		waiterDone <- result{resp.StatusCode, out}
	}()
	waitFor(t, "the waiter to coalesce", func() bool { return s.metrics.coalesced.Load() == 1 })

	// The initiator walks away; the waiter remains.
	cancelLeader()
	<-leaderDone
	close(unblock)

	got := <-waiterDone
	if got.status != http.StatusOK {
		t.Fatalf("surviving waiter got status %d, want 200", got.status)
	}
	if got.resp.Key == "" || got.resp.Tree == nil || !got.resp.Coalesced {
		t.Fatalf("surviving waiter got an incomplete result: key=%q coalesced=%v tree=%v",
			got.resp.Key, got.resp.Coalesced, got.resp.Tree != nil)
	}
	if got.resp.Labels["c_Adult"] == "" {
		t.Fatalf("no label for c_Adult: %v", got.resp.Labels)
	}
	// The result of the completed run is cached exactly once.
	if s.cache.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", s.cache.Len())
	}
	waitDrained(t, s)
}

// TestCoalescedErrorDoesNotLeakFlight: a failing run (invalid sources
// reaching the pipeline) must clear its in-flight entry so later requests
// start fresh, and must insert nothing into the cache.
func TestCoalescedErrorDoesNotLeakFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Cluster-free sources pass resolution but fail inside the pipeline.
	bad := []*qilabel.Tree{qilabel.NewTree("solo", qilabel.NewField("Only", ""))}

	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/integrate", integrateRequest{Sources: bad})
		var env errorEnvelope
		decodeBody(t, resp, &env)
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != codeBadRequest {
			t.Fatalf("attempt %d: status=%d code=%q, want 400/%q", i, resp.StatusCode, env.Error.Code, codeBadRequest)
		}
	}
	if s.cache.Len() != 0 {
		t.Fatalf("failed integration reached the cache (%d entries)", s.cache.Len())
	}
	if n := s.flights.inflightKeys(); n != 0 {
		t.Fatalf("failed flight leaked: %d in-flight keys", n)
	}
	// Both attempts were fresh computations, not coalesced onto a stale
	// flight entry.
	if got := s.metrics.cacheMisses.Load(); got != 2 {
		t.Fatalf("cache misses = %d, want 2 (each failed attempt recomputes)", got)
	}
}
