package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qilabel"
)

// Request coalescing: the server recomputes nothing it is already
// computing. Every cold integration is represented by a flight keyed by
// qilabel.CacheKey; the first request for a key (the leader) launches the
// pipeline run, and every identical request arriving while it is in the
// air joins as a waiter and shares the one result. N concurrent identical
// requests therefore trigger exactly one pipeline execution, one cache
// insertion and one cache-miss count — the duplicated-interface workload
// the paper's evaluation corpus models (many clients integrating one
// domain's source pool) collapses to a single computation.
//
// Waiters keep their own deadlines: a waiter whose request times out or
// whose client disconnects leaves the flight and gets its own error
// response, but the shared run keeps going as long as at least one waiter
// remains. Only when the last waiter has left is the run canceled (there
// is nobody left to deliver to). The run itself is bounded by the server's
// RequestTimeout from the moment it starts, so an abandoned flight can
// never outlive the budget a direct request would have had.

// errSaturated marks a flight that could not claim a worker-pool slot;
// every waiter maps it to 503 + Retry-After.
var errSaturated = errors.New("server saturated")

// flight is one in-flight pipeline computation shared by all concurrent
// requests for its cache key.
type flight struct {
	// done closes once resp/err are published; the fields are written
	// before the close, so readers that observed the close may read them
	// without locking.
	done chan struct{}
	// ctx bounds the shared run: RequestTimeout from flight creation,
	// canceled early when the last waiter leaves.
	ctx    context.Context
	cancel context.CancelFunc
	// waiters counts the requests sharing this flight (guarded by the
	// owning group's mutex). It starts at 1 for the leader.
	waiters int

	resp integrateResponse
	err  error
}

// flightGroup deduplicates concurrent computations by cache key — a
// singleflight group whose flights survive individual waiters leaving.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key, creating it when none is in the air.
// The boolean reports leadership: the caller that created the flight must
// launch the run and eventually call finish exactly once.
func (g *flightGroup) join(key string, timeout time.Duration) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.waiters++
		return f, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	f := &flight{done: make(chan struct{}), ctx: ctx, cancel: cancel, waiters: 1}
	g.m[key] = f
	return f, true
}

// leave records that one waiter gave up (its own deadline passed or its
// client disconnected). The last waiter to leave cancels the shared run:
// nobody is left to deliver the result to.
func (g *flightGroup) leave(f *flight) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f.waiters--
	if f.waiters <= 0 {
		f.cancel()
	}
}

// finish publishes the flight's outcome and wakes every waiter. The flight
// leaves the group before done closes, so a request arriving after a
// failed flight starts fresh instead of inheriting a dead entry — on
// success the caller has already inserted the result into the cache, so
// the new request hits there. finish must be called exactly once, by the
// leader's run.
func (g *flightGroup) finish(key string, f *flight, resp integrateResponse, err error) {
	g.mu.Lock()
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.resp, f.err = resp, err
	f.cancel()
	close(f.done)
}

// inflightKeys reports how many flights are currently in the air.
func (g *flightGroup) inflightKeys() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// ---- the coalesced integration path ------------------------------------

// Item statuses reported by integrateShared and the batch endpoint.
const (
	statusHit       = "hit"       // served from the result cache
	statusCoalesced = "coalesced" // joined another request's in-flight run
	statusComputed  = "computed"  // this request's run computed the result
)

// apiError is an endpoint-independent error: the HTTP handlers and the
// batch streamer render it into the shared envelope.
type apiError struct {
	status int
	code   string
	msg    string
}

// integrateShared is the one path every integration takes: cache first,
// then the flight group. block selects the worker-slot discipline — the
// interactive endpoints fail fast with 503 when the pool is saturated,
// the batch fan-out (which already bounds its own parallelism) waits for
// a slot instead.
func (s *Server) integrateShared(ctx context.Context, key string, sources []*qilabel.Tree, domain string, ropts requestOptions, block bool) (integrateResponse, string, *apiError) {
	lexLabel := lexiconLabel(ropts.Lexicon)
	if e, hit := s.cache.Get(key); hit {
		s.metrics.cacheHits.Add(1)
		s.metrics.recordLexicon(lexLabel, statusHit)
		resp := e.resp
		resp.Cached = true
		return resp, statusHit, nil
	}

	// The waiter's own budget: the request context bounded by the
	// configured timeout, independent of the shared run's budget.
	wctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()

	f, leader := s.flights.join(key, s.cfg.RequestTimeout)
	if leader {
		s.metrics.cacheMisses.Add(1)
		s.metrics.recordLexicon(lexLabel, statusComputed)
		go s.runFlight(f, key, sources, domain, ropts, block)
	} else {
		s.metrics.coalesced.Add(1)
		s.metrics.recordLexicon(lexLabel, statusCoalesced)
	}

	select {
	case <-f.done:
		if f.err != nil {
			return integrateResponse{}, "", s.apiErrorFor(f.err)
		}
		resp := f.resp
		status := statusComputed
		if !leader {
			resp.Coalesced = true
			status = statusCoalesced
		}
		return resp, status, nil
	case <-wctx.Done():
		s.flights.leave(f)
		if ctx.Err() != nil {
			return integrateResponse{}, "", &apiError{statusClientClosedRequest, codeCanceled,
				"request canceled before the integration finished"}
		}
		return integrateResponse{}, "", s.timeoutError()
	}
}

// runFlight is the leader's run: claim a worker slot, execute the pipeline
// under the flight context, cache on success, publish the outcome. It runs
// on its own goroutine so the leader's request can time out or disconnect
// without killing a run other waiters still depend on.
func (s *Server) runFlight(f *flight, key string, sources []*qilabel.Tree, domain string, ropts requestOptions, block bool) {
	var release func()
	var ok bool
	if block {
		release, ok = s.acquireCtx(f.ctx)
		if !ok {
			s.flights.finish(key, f, integrateResponse{}, f.ctx.Err())
			return
		}
	} else if release, ok = s.acquire(); !ok {
		s.flights.finish(key, f, integrateResponse{}, errSaturated)
		return
	}
	defer release()

	if s.testHookSlow != nil {
		s.testHookSlow()
	}
	ig, err := s.integrator(ropts)
	if err != nil {
		s.flights.finish(key, f, integrateResponse{}, err)
		return
	}
	res, err := ig.IntegrateContext(f.ctx, sources)
	if err != nil {
		s.flights.finish(key, f, integrateResponse{}, err)
		return
	}
	// complete caches the entry before finish removes the flight, so there
	// is no instant at which the key is neither cached nor in the air.
	resp := s.complete(key, domain, sources, ropts, res)
	s.flights.finish(key, f, resp, nil)
}

// apiErrorFor maps a flight error onto the shared error envelope.
func (s *Server) apiErrorFor(err error) *apiError {
	switch {
	case errors.Is(err, errSaturated):
		return &apiError{503, codeSaturated,
			fmt.Sprintf("server saturated (%d integrations in flight); retry shortly", s.cfg.MaxInflight)}
	case errors.Is(err, context.DeadlineExceeded):
		return s.timeoutError()
	case errors.Is(err, context.Canceled):
		return &apiError{statusClientClosedRequest, codeCanceled,
			"request canceled before the integration finished"}
	default:
		return &apiError{400, codeBadRequest, err.Error()}
	}
}

func (s *Server) timeoutError() *apiError {
	return &apiError{504, codeTimeout,
		"integration exceeded the " + s.cfg.RequestTimeout.String() +
			" request timeout and was canceled; retry or split the source pool"}
}
