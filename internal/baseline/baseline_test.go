package baseline

import (
	"testing"

	"qilabel/internal/cluster"
	"qilabel/internal/dataset"
	"qilabel/internal/merge"
	"qilabel/internal/naming"
	"qilabel/internal/schema"
)

func clusterOf(labels ...string) *cluster.Cluster {
	c := &cluster.Cluster{Name: "c"}
	for i, l := range labels {
		c.Members = append(c.Members, cluster.Member{
			Interface: string(rune('a' + i)),
			Leaf:      schema.NewField(l, "c"),
		})
	}
	return c
}

// TestLabelPicksMostGeneral reproduces the §3.2.1 criticism: given
// {Category, Job Category, Area of Work, Function}, the baseline elects a
// most-general root (Category or Function), not the descriptive Job
// Category the paper prefers.
func TestLabelPicksMostGeneral(t *testing.T) {
	sem := naming.NewSemantics(nil)
	c := clusterOf("Category", "Job Category", "Area of Work", "Function", "Category")
	got := Label(sem, c)
	if got != "Category" && got != "Function" {
		t.Errorf("baseline elected %q, want a most-general root (Category/Function)", got)
	}
	if got == "Job Category" {
		t.Error("the baseline must not pick the descriptive label")
	}
}

func TestLabelMajorityRule(t *testing.T) {
	sem := naming.NewSemantics(nil)
	// Two unrelated roots: the more frequent one wins.
	c := clusterOf("Garage", "Basement", "Garage")
	if got := Label(sem, c); got != "Garage" {
		t.Errorf("majority rule failed: got %q", got)
	}
	if got := Label(sem, clusterOf()); got != "" {
		t.Errorf("empty cluster: got %q", got)
	}
}

// TestCompareOnJobDomain: on the Job corpus the paper's labeler must be at
// least as descriptive as the baseline and never the more generic side.
func TestCompareOnJobDomain(t *testing.T) {
	d, err := dataset.ByName("Job")
	if err != nil {
		t.Fatal(err)
	}
	trees := d.Generate()
	cluster.ExpandOneToMany(trees)
	m, err := cluster.FromTrees(trees)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := merge.Merge(trees, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naming.Run(mr, naming.Options{}); err != nil {
		t.Fatal(err)
	}
	paper := make(map[string]string)
	for _, c := range m.Clusters {
		if leaf := mr.LeafOf[c.Name]; leaf != nil {
			paper[c.Name] = leaf.Label
		}
	}
	sem := naming.NewSemantics(nil)
	base := Run(sem, m)
	cmp := Compare(sem, m, mr.Groups, paper, base)
	if cmp.Clusters == 0 {
		t.Fatal("nothing compared")
	}
	if cmp.PaperWords < cmp.BaselineWords {
		t.Errorf("paper labeler avg %.2f words vs baseline %.2f: descriptiveness lost",
			cmp.PaperWords, cmp.BaselineWords)
	}
}

func TestGroupVectorConsistent(t *testing.T) {
	sem := naming.NewSemantics(nil)
	// One interface supplies (Minimum, Maximum); labels taken from it are
	// consistent; labels mixing interfaces that never co-label are not.
	trees := []*schema.Tree{
		schema.NewTree("s1",
			schema.NewField("Minimum", "c_Min"),
			schema.NewField("Maximum", "c_Max"),
		),
		schema.NewTree("s2",
			schema.NewField("From", "c_Min"),
		),
		schema.NewTree("s3",
			schema.NewField("To", "c_Max"),
		),
	}
	m, err := cluster.FromTrees(trees)
	if err != nil {
		t.Fatal(err)
	}
	g := []*cluster.Cluster{m.Get("c_Min"), m.Get("c_Max")}
	if !groupVectorConsistent(sem, g, map[string]string{"c_Min": "Minimum", "c_Max": "Maximum"}) {
		t.Error("(Minimum, Maximum) comes from one interface: consistent")
	}
	if groupVectorConsistent(sem, g, map[string]string{"c_Min": "From", "c_Max": "To"}) {
		t.Error("(From, To) mixes interfaces that never co-label: inconsistent")
	}
	if groupVectorConsistent(sem, g, map[string]string{"c_Min": "", "c_Max": "To"}) {
		t.Error("an unlabeled position cannot be consistent")
	}
}
