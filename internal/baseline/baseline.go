// Package baseline implements the comparison labeler the paper positions
// itself against: the representative-attribute-name (RAN) approach of
// WISE-Integrator [12] as characterized in §3.2.1 and §8. It models the
// integrated interface as a FLAT schema and labels every cluster
// independently:
//
//   - hypernymy hierarchies are built over the cluster's member labels;
//   - among the roots — the MOST GENERAL labels — the representative is
//     elected by the MAJORITY rule (the label appearing on the most
//     interfaces);
//   - no grouping, no horizontal or vertical consistency, no internal-node
//     labels, no instance-based reconciliation.
//
// The ablation benchmark contrasts it with the paper's labeler on three
// axes the paper argues for: descriptiveness of the chosen labels,
// within-group naming consistency, and internal-node coverage (the
// baseline has none by construction).
package baseline

import (
	"sort"

	"qilabel/internal/cluster"
	"qilabel/internal/naming"
)

// Label elects the representative attribute name of one cluster by the
// most-general + majority rule.
func Label(sem *naming.Semantics, c *cluster.Cluster) string {
	labels := c.Labels()
	if len(labels) == 0 {
		return ""
	}
	roots := hierarchyRoots(sem, labels)
	freq := c.LabelFrequency()
	sort.SliceStable(roots, func(i, j int) bool {
		if freq[roots[i]] != freq[roots[j]] {
			return freq[roots[i]] > freq[roots[j]]
		}
		return roots[i] < roots[j]
	})
	return roots[0]
}

// hierarchyRoots returns the labels no other label is a hypernym of.
func hierarchyRoots(sem *naming.Semantics, labels []string) []string {
	var roots []string
	for _, a := range labels {
		isRoot := true
		for _, b := range labels {
			if a != b && sem.Relate(b, a) == naming.RelHypernym {
				isRoot = false
				break
			}
		}
		if isRoot {
			roots = append(roots, a)
		}
	}
	if len(roots) == 0 {
		return labels
	}
	return roots
}

// Result is a flat labeling of a domain's clusters.
type Result struct {
	// Labels maps cluster names to the elected representative names.
	Labels map[string]string
}

// Run labels every cluster of the mapping independently.
func Run(sem *naming.Semantics, m *cluster.Mapping) *Result {
	if sem == nil {
		sem = naming.NewSemantics(nil)
	}
	res := &Result{Labels: make(map[string]string, len(m.Clusters))}
	for _, c := range m.Clusters {
		res.Labels[c.Name] = Label(sem, c)
	}
	return res
}

// Comparison quantifies the §3.2.1 contrast between the baseline and the
// paper's labeler on one domain.
type Comparison struct {
	// Clusters is the number of clusters compared (labeled by both).
	Clusters int
	// BaselineWords / PaperWords are the average content-word counts of
	// the chosen labels: the descriptiveness axis.
	BaselineWords float64
	PaperWords    float64
	// MoreGeneric counts clusters where the baseline chose a strict
	// hypernym of the paper's choice (the "too generic" failure of
	// §3.2.1: Category instead of Job Category).
	MoreGeneric int
	// GroupsConsistent counts, among ConsistentGroupsTotal groups, those
	// whose label vector forms a consistent tuple at some level of
	// Definition 2 under each labeler.
	BaselineGroupsConsistent int
	PaperGroupsConsistent    int
	GroupsTotal              int
}

// Compare evaluates both labelers' choices.
func Compare(sem *naming.Semantics, m *cluster.Mapping,
	groups [][]*cluster.Cluster, paper map[string]string, base *Result) Comparison {

	var cmp Comparison
	for _, c := range m.Clusters {
		pl, bl := paper[c.Name], base.Labels[c.Name]
		if pl == "" || bl == "" {
			continue
		}
		cmp.Clusters++
		cmp.BaselineWords += float64(sem.ContentWordCount(bl))
		cmp.PaperWords += float64(sem.ContentWordCount(pl))
		if sem.Relate(bl, pl) == naming.RelHypernym {
			cmp.MoreGeneric++
		}
	}
	if cmp.Clusters > 0 {
		cmp.BaselineWords /= float64(cmp.Clusters)
		cmp.PaperWords /= float64(cmp.Clusters)
	}
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		cmp.GroupsTotal++
		if groupVectorConsistent(sem, g, base.Labels) {
			cmp.BaselineGroupsConsistent++
		}
		if groupVectorConsistent(sem, g, paper) {
			cmp.PaperGroupsConsistent++
		}
	}
	return cmp
}

// groupVectorConsistent reports whether the labels assigned to a group
// could have been supplied as one consistent row: every pair of adjacent
// fields originates from at least one shared interface row, approximated
// by checking that some single interface supplies an equal label for each
// assigned one, pairwise-connected. The practical check used here: the
// label vector is consistent when every label of the group co-occurs with
// another group label on at least one source interface (equality level).
func groupVectorConsistent(sem *naming.Semantics, g []*cluster.Cluster, labels map[string]string) bool {
	if len(g) < 2 {
		return true
	}
	// Collect the interfaces supporting each assigned label.
	support := make([]map[string]bool, len(g))
	for i, c := range g {
		support[i] = make(map[string]bool)
		want := labels[c.Name]
		if want == "" {
			return false
		}
		for _, m := range c.Members {
			if m.Leaf.Label != "" && sem.Equivalent(m.Leaf.Label, want) {
				support[i][m.Interface] = true
			}
		}
		if len(support[i]) == 0 {
			return false
		}
	}
	// Union-find over group positions: positions sharing a supporting
	// interface are connected; a consistent vector connects all positions.
	parent := make([]int, len(g))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(g); i++ {
		for j := i + 1; j < len(g); j++ {
			shared := false
			for iface := range support[i] {
				if support[j][iface] {
					shared = true
					break
				}
			}
			if shared {
				parent[find(j)] = find(i)
			}
		}
	}
	root := find(0)
	for i := 1; i < len(g); i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}
