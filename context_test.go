package qilabel

// Tests for the context-aware entry point: cooperative cancellation at
// every pipeline stage, parallel/serial output equivalence across the
// whole builtin corpus, configuration validation and the stage observer.

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestParallelMatchesSerial is the determinism contract behind excluding
// Parallelism from the fingerprint: for every builtin domain, with and
// without the matcher, a parallel run must produce byte-identical output
// to the serial run — same labels, class, tree rendering and cache key.
func TestParallelMatchesSerial(t *testing.T) {
	for _, domain := range BuiltinDomains() {
		for _, matcher := range []bool{false, true} {
			name := domain
			if matcher {
				name += "/matcher"
			}
			t.Run(name, func(t *testing.T) {
				sources, err := BuiltinDomain(domain)
				if err != nil {
					t.Fatal(err)
				}
				base := []Option{WithParallelism(1)}
				par := []Option{WithParallelism(8)}
				if matcher {
					base = append(base, WithMatcher())
					par = append(par, WithMatcher())
				}
				serial, err := Integrate(sources, base...)
				if err != nil {
					t.Fatal(err)
				}
				parallel, err := Integrate(sources, par...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Labels, parallel.Labels) {
					t.Errorf("labels diverge:\nserial:   %v\nparallel: %v", serial.Labels, parallel.Labels)
				}
				if serial.Class != parallel.Class {
					t.Errorf("class diverges: serial %s, parallel %s", serial.Class, parallel.Class)
				}
				if serial.Tree.String() != parallel.Tree.String() {
					t.Errorf("tree rendering diverges:\nserial:\n%s\nparallel:\n%s", serial.Tree, parallel.Tree)
				}
				if k1, k2 := CacheKey(sources, base...), CacheKey(sources, par...); k1 != k2 {
					t.Errorf("cache key depends on parallelism: %q vs %q", k1, k2)
				}
			})
		}
	}
}

// TestIntegrateContextCanceledBeforeStart: a dead context must stop the
// pipeline before any stage runs.
func TestIntegrateContextCanceledBeforeStart(t *testing.T) {
	sources, err := BuiltinDomain("Airline")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var events []StageEvent
	res, err := IntegrateContext(ctx, sources, WithObserver(func(e StageEvent) {
		events = append(events, e)
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if len(events) != 0 {
		t.Fatalf("canceled run emitted stage events: %v", events)
	}
}

// cancelAfterStage integrates with the matcher and cancels the context
// from inside the observer as the named stage completes, so the next
// stage deterministically enters with a dead context. It returns the
// stages that ran to completion.
func cancelAfterStage(t *testing.T, stage string) []string {
	t.Helper()
	sources, err := BuiltinDomain("Hotels")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done []string
	res, err := IntegrateContext(ctx, sources,
		WithMatcher(), WithParallelism(4),
		WithObserver(func(e StageEvent) {
			done = append(done, e.Stage)
			if e.Stage == stage {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel after %q: err = %v, want context.Canceled", stage, err)
	}
	if res != nil {
		t.Fatalf("cancel after %q returned a result", stage)
	}
	return done
}

// TestIntegrateContextCancelMidPipeline cancels right after each stage
// boundary and checks the pipeline stops there: the canceled stage never
// reports completion.
func TestIntegrateContextCancelMidPipeline(t *testing.T) {
	cases := []struct {
		after string // stage whose completion triggers cancel
		next  string // stage that must never complete
	}{
		{"validate", "match"},
		{"match", "merge"},
		{"merge", "naming"},
	}
	for _, tc := range cases {
		t.Run("after_"+tc.after, func(t *testing.T) {
			done := cancelAfterStage(t, tc.after)
			for _, s := range done {
				if s == tc.next {
					t.Fatalf("stage %q completed despite cancellation after %q (ran: %v)", tc.next, tc.after, done)
				}
			}
		})
	}
}

// TestObserverStageSequence pins the stage order and sanity-checks the
// unit counts on a matcher-enabled run.
func TestObserverStageSequence(t *testing.T) {
	sources, err := BuiltinDomain("Airline")
	if err != nil {
		t.Fatal(err)
	}
	var events []StageEvent
	if _, err := Integrate(sources, WithMatcher(), WithObserver(func(e StageEvent) {
		events = append(events, e)
	})); err != nil {
		t.Fatal(err)
	}
	want := []string{"validate", "match", "merge", "naming"}
	if len(events) != len(want) {
		t.Fatalf("got %d stage events, want %d: %v", len(events), len(want), events)
	}
	for i, e := range events {
		if e.Stage != want[i] {
			t.Errorf("stage[%d] = %q, want %q", i, e.Stage, want[i])
		}
		if e.Units <= 0 {
			t.Errorf("stage %q reports %d units", e.Stage, e.Units)
		}
		if e.Duration < 0 {
			t.Errorf("stage %q reports negative duration", e.Stage)
		}
	}
}

// TestConfigValidate covers the exported validation surface directly and
// through Integrate.
func TestConfigValidate(t *testing.T) {
	valid := Config{MaxLevel: 3, MinFrequency: 2, Parallelism: 4}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	invalid := []Config{
		{MaxLevel: -1},
		{MaxLevel: 4},
		{MinFrequency: -1},
		{Parallelism: -1},
	}
	for _, cfg := range invalid {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v passed validation", cfg)
		}
		sources, _ := BuiltinDomain("Airline")
		if _, err := Integrate(sources, WithConfig(cfg)); err == nil {
			t.Errorf("Integrate accepted invalid config %+v", cfg)
		}
	}
}

// TestWithConfigEquivalence: building a Config directly must be
// indistinguishable from stacking the thin With* options.
func TestWithConfigEquivalence(t *testing.T) {
	cfg := Config{UseMatcher: true, DisableInstances: true, MaxLevel: 2, MinFrequency: 2}
	byOptions := Fingerprint(WithMatcher(), WithoutInstances(), WithMaxLevel(2), WithMinFrequency(2))
	byConfig := Fingerprint(WithConfig(cfg))
	if byOptions != byConfig {
		t.Fatalf("fingerprints diverge:\noptions: %s\nconfig:  %s", byOptions, byConfig)
	}

	sources, err := BuiltinDomain("Book")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Integrate(sources, WithMatcher())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Integrate(sources, WithConfig(Config{UseMatcher: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Labels, r2.Labels) || r1.Tree.String() != r2.Tree.String() {
		t.Fatal("WithConfig run diverges from equivalent With* run")
	}
}

// TestFingerprintExcludesRuntimeKnobs: parallelism and the observer can
// never change the output, so they must not fragment the cache key space.
func TestFingerprintExcludesRuntimeKnobs(t *testing.T) {
	plain := Fingerprint()
	tuned := Fingerprint(WithParallelism(16), WithObserver(func(StageEvent) {}))
	if plain != tuned {
		t.Fatalf("fingerprint depends on runtime knobs:\nplain: %s\ntuned: %s", plain, tuned)
	}
}

// TestVerifyTypedShim: the typed violations and the deprecated
// VerifyStrings shim must carry the same details — the dedicated test that
// keeps the shim compiling and faithful until it is removed. New code
// belongs on Verify's typed []Violation.
func TestVerifyTypedShim(t *testing.T) {
	sources, err := BuiltinDomain("Airline")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Integrate(sources)
	if err != nil {
		t.Fatal(err)
	}
	vs := res.Verify()
	ss := res.VerifyStrings()
	if len(vs) != len(ss) {
		t.Fatalf("typed (%d) and string (%d) violation counts differ", len(vs), len(ss))
	}
	for i, v := range vs {
		if v.Detail != ss[i] {
			t.Errorf("violation %d: detail %q != string %q", i, v.Detail, ss[i])
		}
		if v.Rule == "" || v.String() == "" {
			t.Errorf("violation %d has empty rule or String()", i)
		}
	}
}
